type point = {
  refs : int;
  misses : int;
  alloc_misses : int;
}

type result = {
  points : point array;
  total_refs : int;
  total_misses : int;
  global_miss_ratio : float;
  cum_ratio : float array;
  peak_cum_ratio : float;
  final_drop_factor : float;
  worst_case_blocks : int;
  best_case_blocks : int;
}

let analyze cache =
  let refs = Memsim.Cache.block_refs cache in
  let misses = Memsim.Cache.block_misses cache in
  let allocs = Memsim.Cache.block_alloc_misses cache in
  let n = Array.length refs in
  let points =
    Array.init n (fun i ->
        { refs = refs.(i); misses = misses.(i); alloc_misses = allocs.(i) })
  in
  Array.sort (fun a b -> compare a.refs b.refs) points;
  let total_refs = Array.fold_left (fun acc p -> acc + p.refs) 0 points in
  let total_misses = Array.fold_left (fun acc p -> acc + p.misses) 0 points in
  let cum_ratio = Array.make n 0.0 in
  let cr = ref 0 in
  let cm = ref 0 in
  let peak = ref 0.0 in
  Array.iteri
    (fun i p ->
      cr := !cr + p.refs;
      cm := !cm + p.misses;
      let ratio =
        if !cr = 0 then 0.0 else float_of_int !cm /. float_of_int !cr
      in
      cum_ratio.(i) <- ratio;
      if ratio > !peak then peak := ratio)
    points;
  let global =
    if total_refs = 0 then 0.0
    else float_of_int total_misses /. float_of_int total_refs
  in
  let top = max 1 (n / 100) in
  let worst = ref 0 in
  let best = ref 0 in
  for i = n - top to n - 1 do
    if i >= 0 then begin
      let p = points.(i) in
      if p.refs > 0 then begin
        let local = float_of_int p.misses /. float_of_int p.refs in
        if local > 0.4 then incr worst else if local < 0.01 then incr best
      end
    end
  done;
  { points;
    total_refs;
    total_misses;
    global_miss_ratio = global;
    cum_ratio;
    peak_cum_ratio = !peak;
    final_drop_factor = (if global > 0.0 then !peak /. global else 1.0);
    worst_case_blocks = !worst;
    best_case_blocks = !best
  }

(* Map a miss ratio onto a canvas row: log scale from 1 (top row) down
   to 10^-decades (bottom row); zero ratios sit on the bottom row. *)
let ratio_row ~rows ~decades ratio =
  if ratio <= 0.0 then rows - 1
  else begin
    let l = -.Float.log10 (Float.min ratio 1.0) in
    let r = int_of_float (l /. float_of_int decades *. float_of_int (rows - 1)) in
    min (rows - 1) (max 0 r)
  end

let render ppf ?(rows = 20) ?(cols = 100) result =
  let n = Array.length result.points in
  if n = 0 then Format.fprintf ppf "(no cache blocks)@."
  else begin
    let decades = 5 in
    let canvas = Ascii.create ~rows ~cols in
    Array.iteri
      (fun i p ->
        if p.refs > 0 then begin
          let local = float_of_int p.misses /. float_of_int p.refs in
          let col = i * cols / n in
          let row = ratio_row ~rows ~decades local in
          Ascii.set canvas ~row ~col '.'
        end)
      result.points;
    Array.iteri
      (fun i ratio ->
        let col = i * cols / n in
        let row = ratio_row ~rows ~decades ratio in
        Ascii.set canvas ~row ~col 'C')
      result.cum_ratio;
    let row_labels r =
      if r = 0 then "1e0"
      else if (r * decades) mod (rows - 1) = 0 then
        Printf.sprintf "1e-%d" (r * decades / (rows - 1))
      else ""
    in
    Format.fprintf ppf
      "local miss ratio (.), cumulative miss ratio (C); cache blocks in \
       ascending reference-count order@.";
    Ascii.render ppf ~row_labels canvas;
    Format.fprintf ppf
      "global miss ratio (excl. alloc) %.4f; cumulative peak %.4f; final \
       drop factor %.2f@."
      result.global_miss_ratio result.peak_cum_ratio result.final_drop_factor;
    Format.fprintf ppf
      "top-percentile blocks: %d worst-case (local > 0.4), %d best-case \
       (local < 0.01)@."
      result.worst_case_blocks result.best_case_blocks
  end
