(** The §5 control experiment: cache performance with no collector.

    One pass runs every workload (no GC) through two full cache grids
    — write-validate and fetch-on-write — and the three artifacts are
    read off it:

    - E-F1: average cache overhead against cache size, per block size
      and processor, under write-validate;
    - E-T3: the cost of fetch-on-write relative to write-validate;
    - E-T4: write-back traffic overheads (the paper's "preliminary
      measurements" of write costs). *)

val figure_overheads : Format.formatter -> unit
val table_write_policy : Format.formatter -> unit
val table_write_backs : Format.formatter -> unit
