(** The §6 experiments: program performance with real collectors.

    - E-F2: garbage-collection overhead (O_gc) of the Cheney semispace
      collector for selfcomp, nbody and mexpr, against cache size at
      64-byte blocks — the paper's figure with orbit, nbody, gambit.
    - E-T5: the lp pathology — lred under Cheney (recopying its
      monotonically growing trail every collection) against an
      infrequently-run generational collector.
    - E-T6: the aggressive-collection argument — a generational
      collector with the nursery swept from cache-sized ("aggressive")
      to multi-megabyte ("infrequent"), showing that smaller nurseries
      cost more than any cache improvement they could buy. *)

val figure_gc_overhead : Format.formatter -> unit
val table_lp_pathology : Format.formatter -> unit
val table_aggressive : Format.formatter -> unit
