(** The §7 cache-activity graphs (local vs. global performance).

    - E-F5: selfcomp in a 64 KB cache — the canonical graph: best-case
      busy blocks pull the cumulative miss ratio down at the end;
    - E-F6: prover in a 64 KB cache — the imps analogue, where a
      thrashing pair of busy blocks shows up as a jump;
    - E-F7: mexpr in a 64 KB cache — misses spread over the whole
      cache (gambit's many long-lived blocks);
    - E-F8: selfcomp in a 128 KB cache — both halves of the graph
      improve as the cache doubles. *)

val figure_selfcomp_64k : Format.formatter -> unit
val figure_prover_64k : Format.formatter -> unit
val figure_mexpr_64k : Format.formatter -> unit
val figure_selfcomp_128k : Format.formatter -> unit
