(** Plain-text table formatting for experiment output. *)

val heading : Format.formatter -> string -> unit
(** An underlined section heading. *)

val table :
  Format.formatter -> headers:string list -> rows:string list list -> unit
(** Column-aligned table; the first column is left-aligned, the rest
    right-aligned. *)

val pct : float -> string
(** Render a ratio as a percentage: [pct 0.043 = "4.3%"]. *)

val mb : int -> string
(** Bytes as megabytes: ["12.3mb"]. *)

val eng : int -> string
(** Engineering notation for large counts: ["3.68e9"]. *)

val size_label : int -> string
(** Cache-size axis label: ["64k"], ["2m"]. *)
