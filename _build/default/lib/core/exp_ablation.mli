(** Ablation experiments beyond the paper's artifact list (DESIGN.md §4b).

    - A1 compares the collector families the paper discusses: the
      Cheney semispace collector (§6), the copying generational
      collector, and a Zorn-style non-compacting mark-sweep
      generational collector (§2's prior work) on equal first
      generations.
    - A2 manufactures the §7 worst case: the machine's hot static
      structures (runtime vector, global cells) are laid out so they
      alias the stack base in every power-of-two cache, producing the
      busy-block thrashing the default layout deliberately avoids —
      and demonstrating the paper's point that the cure is placement,
      not a smarter collector. *)

val table_collector_families : Format.formatter -> unit
val table_placement : Format.formatter -> unit

val table_associativity : Format.formatter -> unit
(** A3: direct-mapped vs. 2- and 4-way set-associative caches — the
    §4 design point the paper set aside. *)

val table_two_level : Format.formatter -> unit
(** A4: a 32k L1 backed by a 1m L2, against each level alone — the
    multi-level future work of §4. *)
