(** The paper's two static tables.

    E-T1: the §3 program table — source lines, bytes allocated,
    instructions executed and data references for each test program,
    run without garbage collection.

    E-T2: the §5 miss-penalty table — penalties in processor cycles
    for each block size on the slow (33 MHz) and fast (500 MHz)
    processors, derived from the Przybylski memory model. *)

val program_table : Format.formatter -> unit
(** Runs every workload (no GC) and prints the §3 table. *)

val penalty_table : Format.formatter -> unit
(** Prints the §5 miss-penalty table; pure computation. *)
