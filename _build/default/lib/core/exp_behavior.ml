let block_bytes = 64
let cache_bytes = 64 * 1024

let stats_config () =
  let mcfg = Vscheme.Machine.default_config in
  { Analysis.Block_stats.block_bytes;
    cache_bytes;
    dynamic_base = Vscheme.Machine.dynamic_base_bytes mcfg;
    stack_base = Vscheme.Machine.stack_base_bytes mcfg;
    stack_limit = Vscheme.Machine.dynamic_base_bytes mcfg
  }

(* One behavioural pass per workload, shared by F4, T7 and T8. *)
let pass =
  lazy
    (List.map
       (fun w ->
         let bs = Analysis.Block_stats.create (stats_config ()) in
         let r = Runner.run ~sinks:[ Analysis.Block_stats.sink bs ] w in
         ignore r;
         (w.Workloads.Workload.name, bs))
       Workloads.Workload.all)

let figure_miss_plot ppf =
  Report.heading ppf
    "E-F3 (sec. 7 figure): cache-miss sweep plot, selfcomp, 64k cache / \
     64b blocks";
  let cache =
    Memsim.Cache.create
      (Memsim.Cache.config ~size_bytes:cache_bytes ~block_bytes ())
  in
  let plot =
    Analysis.Miss_plot.create ~cache ~rows:32 ~refs_per_col:65536 ()
  in
  let r =
    Runner.run ~sinks:[ Analysis.Miss_plot.sink plot ]
      Workloads.Workload.selfcomp
  in
  ignore r;
  Analysis.Miss_plot.render ppf plot;
  Format.fprintf ppf
    "@.paper shape: broken diagonal lines - the allocation pointer \
     sweeping the cache; steep@.segments are bursts of allocation; \
     horizontal stripes would be thrashing blocks.@."

let lifetime_points = [ 1024; 8192; 65536; 524288; 4194304; 33554432 ]

(* The paper's figure: one cumulative curve per program, log-scaled
   lifetimes on x.  Each program plots with the initial of its name. *)
let render_lifetime_chart ppf pass =
  let rows = 16 in
  let cols = 96 in
  let lo = Float.log10 16.0 in
  let hi = Float.log10 (64.0 *. 1024.0 *. 1024.0) in
  let canvas = Analysis.Ascii.create ~rows ~cols in
  let sample_points =
    List.init cols (fun c ->
        let frac = float_of_int c /. float_of_int (cols - 1) in
        int_of_float (Float.pow 10.0 (lo +. (frac *. (hi -. lo)))))
  in
  List.iter
    (fun (name, bs) ->
      let letter = name.[0] in
      let cdf = Analysis.Block_stats.lifetime_cdf bs ~points:sample_points in
      List.iteri
        (fun c (_, frac) ->
          let row = rows - 1 - int_of_float (frac *. float_of_int (rows - 1)) in
          Analysis.Ascii.set canvas ~row ~col:c letter)
        cdf)
    pass;
  let row_labels r =
    if r = 0 then "100%"
    else if r = rows - 1 then "0%"
    else if r = (rows - 1) / 2 then "50%"
    else ""
  in
  Format.fprintf ppf
    "cumulative fraction of dynamic blocks vs lifetime (log scale, 16 to \
     64m references);@.s=selfcomp p=prover l=lred n=nbody m=mexpr@.";
  Analysis.Ascii.render ppf ~row_labels canvas

let figure_lifetimes ppf =
  Report.heading ppf
    "E-F4 (sec. 7 figure): dynamic-block lifetime CDFs, 64b blocks; \
     one-cycle fraction at 64k";
  render_lifetime_chart ppf (Lazy.force pass);
  Format.fprintf ppf "@.";
  let rows =
    List.map
      (fun (name, bs) ->
        let cdf = Analysis.Block_stats.lifetime_cdf bs ~points:lifetime_points in
        let summary = Analysis.Block_stats.dynamic_summary bs in
        let one_cycle =
          float_of_int summary.Analysis.Block_stats.one_cycle
          /. float_of_int (max 1 summary.Analysis.Block_stats.blocks)
        in
        name
        :: (List.map (fun (_, f) -> Report.pct f) cdf
            @ [ Report.pct one_cycle ]))
      (Lazy.force pass)
  in
  Report.table ppf
    ~headers:
      ("program"
       :: (List.map (fun p -> "<=" ^ Report.eng p) lifetime_points
           @ [ "one-cycle" ]))
    ~rows;
  Format.fprintf ppf
    "@.paper shape: about half (or more) of dynamic blocks live no longer \
     than 64k references; at@.least half, often more than 80%%, are \
     one-cycle blocks in a 64k cache.@."

let table_activity ppf =
  Report.heading ppf
    "E-T7 (sec. 7): multi-cycle block activity and per-block reference \
     counts";
  let rows =
    List.map
      (fun (name, bs) ->
        let s = Analysis.Block_stats.dynamic_summary bs in
        let le4 =
          float_of_int s.Analysis.Block_stats.multi_cycle_le4
          /. float_of_int (max 1 s.Analysis.Block_stats.multi_cycle)
        in
        let lo, hi = Analysis.Block_stats.median_refcount_bucket bs in
        [ name;
          string_of_int s.Analysis.Block_stats.blocks;
          string_of_int s.Analysis.Block_stats.multi_cycle;
          Report.pct le4;
          Format.sprintf "%d-%d" lo hi
        ])
      (Lazy.force pass)
  in
  Report.table ppf
    ~headers:
      [ "program"; "dynamic blocks"; "multi-cycle"; "active <=4 cycles";
        "modal refs/block" ]
    ~rows;
  Format.fprintf ppf
    "@.paper: at least 90%% of multi-cycle blocks are active in no more \
     than four cycles; most@.dynamic blocks are referenced between 32 and \
     63 times (2-4 references per word).@."

let table_busy ppf =
  Report.heading ppf "E-T8 (sec. 7): busy blocks (>= 0.1%% of references)";
  let rows =
    List.map
      (fun (name, bs) ->
        let b = Analysis.Block_stats.busy_summary bs in
        [ name;
          string_of_int b.Analysis.Block_stats.busy_blocks;
          string_of_int b.Analysis.Block_stats.busy_static;
          string_of_int b.Analysis.Block_stats.busy_stack;
          string_of_int b.Analysis.Block_stats.busy_dynamic;
          Report.pct b.Analysis.Block_stats.busy_ref_fraction;
          Report.pct b.Analysis.Block_stats.busiest_fraction
        ])
      (Lazy.force pass)
  in
  Report.table ppf
    ~headers:
      [ "program"; "busy"; "static"; "stack"; "dynamic"; "refs to busy";
        "busiest block" ]
    ~rows;
  Format.fprintf ppf
    "@.paper: 59-155 busy blocks per program (<0.02%% of active blocks) \
     taking ~75%% of all references;@.stack references concentrate in a \
     few extremely busy blocks; the busiest block is a small@.runtime \
     vector taking ~6.7%% of all references.@."
