lib/core/exp_behavior.ml: Analysis Float Format Lazy List Memsim Report Runner String Vscheme Workloads
