lib/core/exp_behavior.mli: Format
