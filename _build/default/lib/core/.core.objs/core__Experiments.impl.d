lib/core/experiments.ml: Exp_ablation Exp_activity Exp_behavior Exp_control Exp_gc Format List String Tables
