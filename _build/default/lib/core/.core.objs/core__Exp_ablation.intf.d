lib/core/exp_ablation.mli: Format
