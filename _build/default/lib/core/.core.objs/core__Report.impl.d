lib/core/report.ml: Array Float Format List Memsim String
