lib/core/exp_control.ml: Float Format Lazy List Memsim Report Runner Vscheme Workloads
