lib/core/exp_ablation.ml: Analysis Format List Memsim Report Runner String Vscheme Workloads
