lib/core/runner.mli: Memsim Vscheme Workloads
