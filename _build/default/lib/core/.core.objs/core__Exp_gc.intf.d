lib/core/exp_gc.mli: Format
