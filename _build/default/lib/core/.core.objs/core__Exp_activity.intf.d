lib/core/exp_activity.mli: Format
