lib/core/exp_gc.ml: Format List Memsim Report Runner Vscheme Workloads
