lib/core/runner.ml: Memsim Sys Vscheme Workloads
