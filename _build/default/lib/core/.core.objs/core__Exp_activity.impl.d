lib/core/exp_activity.ml: Analysis Format Lazy Memsim Report Runner Workloads
