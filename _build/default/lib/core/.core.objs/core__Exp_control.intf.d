lib/core/exp_control.mli: Format
