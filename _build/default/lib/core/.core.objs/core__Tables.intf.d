lib/core/tables.mli: Format
