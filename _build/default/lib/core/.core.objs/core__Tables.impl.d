lib/core/tables.ml: Format List Memsim Report Runner Vscheme Workloads
