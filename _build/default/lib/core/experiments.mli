(** The experiment registry: every table and figure of the paper.

    Each experiment prints, on a formatter, the reproduction of one
    paper artifact together with the paper's expectation for its
    shape.  EXPERIMENTS.md records measured-vs-paper for a full
    run. *)

type t = {
  id : string;           (** e.g. ["F1"], ["T5"] *)
  title : string;
  paper_artifact : string;
      (** which table/figure of the paper this regenerates *)
  run : Format.formatter -> unit;
}

val all : t list
(** In presentation order: the paper's sixteen artifacts T1, T2, F1,
    T3, T4, F2, T5, T6, F3, F4, T7, T8, F5, F6, F7, F8, then the
    ablation extensions A1 (collector families), A2 (busy-block
    placement), A3 (associativity) and A4 (two-level hierarchy). *)

val find : string -> t option
(** Case-insensitive lookup by id. *)

val run_all : Format.formatter -> unit
