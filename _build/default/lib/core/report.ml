let heading ppf title =
  Format.fprintf ppf "@.%s@.%s@." title (String.make (String.length title) '-')

let table ppf ~headers ~rows =
  let all = headers :: rows in
  let ncols = List.fold_left (fun n r -> max n (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    all;
  let print_row row =
    List.iteri
      (fun i cell ->
        let pad = String.make (widths.(i) - String.length cell) ' ' in
        if i = 0 then Format.fprintf ppf "%s%s" cell pad
        else Format.fprintf ppf "  %s%s" pad cell)
      row;
    Format.fprintf ppf "@."
  in
  print_row headers;
  Format.fprintf ppf "%s@."
    (String.make
       (Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)))
       '-');
  List.iter print_row rows

let pct x = Format.sprintf "%.1f%%" (100.0 *. x)

let mb bytes = Format.sprintf "%.1fmb" (float_of_int bytes /. 1048576.0)

let eng n =
  if n = 0 then "0"
  else begin
    let f = float_of_int n in
    let e = int_of_float (Float.floor (Float.log10 (Float.abs f))) in
    Format.sprintf "%.2fe%d" (f /. Float.pow 10.0 (float_of_int e)) e
  end

let size_label n = Format.asprintf "%a" Memsim.Sweep.pp_size n
