(** The §7 behavioural analysis, reproduced for every workload.

    - E-F3: the cache-miss sweep plot (allocation "wave") for the
      compiler workload in a 64 KB cache with 64-byte blocks;
    - E-F4: cumulative dynamic-block lifetime distributions with the
      one-cycle fraction marked, 64-byte blocks, 64 KB cache;
    - E-T7: multi-cycle block activity (≥90% active in ≤4 cycles) and
      the modal per-block reference count (paper: 32–63);
    - E-T8: busy blocks — population, share of all references,
      concentration in the stack, and the single busiest block. *)

val figure_miss_plot : Format.formatter -> unit
val figure_lifetimes : Format.formatter -> unit
val table_activity : Format.formatter -> unit
val table_busy : Format.formatter -> unit
