let program_table ppf =
  Report.heading ppf
    "E-T1 (sec. 3): test programs, run without garbage collection";
  let rows =
    List.map
      (fun w ->
        let r = Runner.run w in
        [ w.Workloads.Workload.name;
          string_of_int (Workloads.Workload.source_lines w);
          Report.mb r.Runner.stats.Vscheme.Machine.bytes_allocated;
          Report.eng r.Runner.stats.Vscheme.Machine.mutator_insns;
          Report.eng r.Runner.refs;
          Format.sprintf "%.2f"
            (float_of_int r.Runner.refs
             /. float_of_int r.Runner.stats.Vscheme.Machine.mutator_insns)
        ])
      Workloads.Workload.all
  in
  Report.table ppf
    ~headers:[ "program"; "lines"; "alloc"; "insns"; "refs"; "refs/insn" ]
    ~rows;
  Format.fprintf ppf
    "paper: orbit 15k lines/161mb, imps 42k/84mb, lp 2.7k/125mb, nbody \
     1.5k/116mb, gambit 15k/357mb; refs/insn 0.26-0.29.@.\
     Runs here are scaled down (REPRO_SCALE multiplies them); the ratios \
     are the comparable quantities.@."

let penalty_table ppf =
  Report.heading ppf "E-T2 (sec. 5): miss penalties, in processor cycles";
  let rows =
    List.map
      (fun block_bytes ->
        [ string_of_int block_bytes;
          string_of_int
            (Memsim.Timing.miss_penalty_cycles Memsim.Timing.Slow ~block_bytes);
          string_of_int
            (Memsim.Timing.miss_penalty_cycles Memsim.Timing.Fast ~block_bytes)
        ])
      Memsim.Sweep.paper_block_sizes
  in
  Report.table ppf
    ~headers:[ "block size (bytes)"; "slow penalty"; "fast penalty" ]
    ~rows;
  Format.fprintf ppf
    "model: 30ns setup + 180ns access + 30ns per 16 bytes; slow cycle 30ns \
     (33MHz), fast cycle 2ns (500MHz).@."
