let block_bytes = 64

let make_cache size_kb =
  Memsim.Cache.create
    (Memsim.Cache.config ~record_block_stats:true
       ~size_bytes:(size_kb * 1024) ~block_bytes ())

(* selfcomp feeds both the 64k (F5) and 128k (F8) caches in one run. *)
let selfcomp_pass =
  lazy
    (let c64 = make_cache 64 in
     let c128 = make_cache 128 in
     let r =
       Runner.run
         ~sinks:[ Memsim.Cache.sink c64; Memsim.Cache.sink c128 ]
         Workloads.Workload.selfcomp
     in
     ignore r;
     (Analysis.Activity.analyze c64, Analysis.Activity.analyze c128))

let run_one w =
  let cache = make_cache 64 in
  let r = Runner.run ~sinks:[ Memsim.Cache.sink cache ] w in
  ignore r;
  Analysis.Activity.analyze cache

let figure_selfcomp_64k ppf =
  Report.heading ppf
    "E-F5 (sec. 7 figure): cache activity, selfcomp, 64k / 64b";
  let a64, _ = Lazy.force selfcomp_pass in
  Analysis.Activity.render ppf a64;
  Format.fprintf ppf
    "@.paper shape (orbit, 64k): most blocks cluster in the middle \
     decades; the most-referenced@.blocks span very bad to very good; the \
     best cases win, dropping the cumulative ratio by a@.factor of ~1.6 \
     at the end (0.027 to 0.017 for orbit).@."

let figure_prover_64k ppf =
  Report.heading ppf
    "E-F6 (sec. 7 figure): cache activity, prover, 64k / 64b";
  Analysis.Activity.render ppf (run_one Workloads.Workload.prover);
  Format.fprintf ppf
    "@.paper shape (imps, 64k): as F5, except that when two busy blocks \
     collide the cumulative@.curve shows a thrashing jump among the \
     most-referenced blocks.@."

let figure_mexpr_64k ppf =
  Report.heading ppf
    "E-F7 (sec. 7 figure): cache activity, mexpr, 64k / 64b";
  Analysis.Activity.render ppf (run_one Workloads.Workload.mexpr);
  Format.fprintf ppf
    "@.paper shape (gambit, 64k): many long-lived dynamic blocks push the \
     less-referenced blocks'@.local ratios an order of magnitude above \
     the other programs'; the best-case blocks still pull@.the global \
     ratio down in the end.@."

let figure_selfcomp_128k ppf =
  Report.heading ppf
    "E-F8 (sec. 7 figure): cache activity, selfcomp, 128k / 64b";
  let a64, a128 = Lazy.force selfcomp_pass in
  Analysis.Activity.render ppf a128;
  Format.fprintf ppf
    "@.paper shape (orbit, 128k): doubling the cache improves both halves \
     of the graph - more of the@.most-referenced blocks become best-case, \
     the rest cluster more tightly, and the global ratio@.falls (64k: \
     %.4f here; 128k: %.4f).@."
    a64.Analysis.Activity.global_miss_ratio
    a128.Analysis.Activity.global_miss_ratio
