(* Analyzer tests on hand-built and synthetic traces. *)

let mutator = Memsim.Trace.Mutator

(* A little trace driver: dynamic area starts at byte 4096; stack at
   2048. *)
let stats_config =
  { Analysis.Block_stats.block_bytes = 64;
    cache_bytes = 1024;
    dynamic_base = 4096;
    stack_base = 2048;
    stack_limit = 4096
  }

let feed bs events =
  let sink = Analysis.Block_stats.sink bs in
  List.iter (fun (addr, kind) -> sink.Memsim.Trace.access addr kind mutator) events

let alloc addr = (addr, Memsim.Trace.Alloc_write)
let read addr = (addr, Memsim.Trace.Read)
let write addr = (addr, Memsim.Trace.Write)

let test_one_cycle_blocks () =
  let bs = Analysis.Block_stats.create stats_config in
  (* Allocate two blocks, touch them immediately, never again. *)
  feed bs [ alloc 4096; read 4096; alloc 4160; read 4160 ];
  let s = Analysis.Block_stats.dynamic_summary bs in
  Alcotest.(check int) "two blocks" 2 s.Analysis.Block_stats.blocks;
  Alcotest.(check int) "both one-cycle" 2 s.Analysis.Block_stats.one_cycle;
  Alcotest.(check int) "no multi" 0 s.Analysis.Block_stats.multi_cycle

let test_multi_cycle_block () =
  let bs = Analysis.Block_stats.create stats_config in
  (* Block at 4096 is referenced again after the allocation pointer
     sweeps past its cache block (cache is 1024 bytes = 16 blocks). *)
  let sweep =
    List.concat_map (fun i -> [ alloc (4096 + (64 * i)) ]) (List.init 17 Fun.id)
  in
  feed bs (sweep @ [ read 4096 ]);
  let s = Analysis.Block_stats.dynamic_summary bs in
  Alcotest.(check int) "one multi-cycle block" 1 s.Analysis.Block_stats.multi_cycle;
  Alcotest.(check int) "it was active in 2 cycles" 1
    s.Analysis.Block_stats.multi_cycle_le4

let test_lifetimes () =
  let bs = Analysis.Block_stats.create stats_config in
  feed bs [ alloc 4096; read 8192; read 8192; read 4096 ];
  let ls = Analysis.Block_stats.lifetimes bs in
  Array.sort compare ls;
  (* block 4096: first event 1, last event 4 -> lifetime 3;
     block 8192: events 2..3 -> lifetime 1 *)
  Alcotest.(check (array int)) "lifetimes" [| 1; 3 |] ls;
  let cdf = Analysis.Block_stats.lifetime_cdf bs ~points:[ 0; 1; 3 ] in
  Alcotest.(check (list (pair int (float 1e-9))))
    "cdf" [ (0, 0.0); (1, 0.5); (3, 1.0) ] cdf

let test_refcounts () =
  let bs = Analysis.Block_stats.create stats_config in
  feed bs (alloc 4096 :: List.init 33 (fun _ -> read 4096));
  let lo, hi = Analysis.Block_stats.median_refcount_bucket bs in
  Alcotest.(check (pair int int)) "34 refs lands in 32-63" (32, 63) (lo, hi)

let test_busy_blocks () =
  let bs = Analysis.Block_stats.create stats_config in
  (* 2000 refs total; one static block gets 1200 of them, one stack
     block 600, the rest scattered over dynamic blocks. *)
  let hot_static = List.init 1200 (fun _ -> read 0) in
  let hot_stack = List.init 600 (fun _ -> write 2048) in
  let cold =
    List.concat_map (fun i -> [ alloc (4096 + (64 * i)) ]) (List.init 200 Fun.id)
  in
  feed bs (hot_static @ hot_stack @ cold);
  let b = Analysis.Block_stats.busy_summary bs in
  Alcotest.(check int) "threshold" 2 b.Analysis.Block_stats.threshold;
  Alcotest.(check int) "busy static" 1 b.Analysis.Block_stats.busy_static;
  Alcotest.(check int) "busy stack" 1 b.Analysis.Block_stats.busy_stack;
  Alcotest.(check bool) "busiest fraction = 0.6" true
    (Float.abs (b.Analysis.Block_stats.busiest_fraction -. 0.6) < 0.001);
  Alcotest.(check bool) "busy refs fraction >= 0.9" true
    (b.Analysis.Block_stats.busy_ref_fraction >= 0.9)

let test_collector_events_ignored () =
  let bs = Analysis.Block_stats.create stats_config in
  let sink = Analysis.Block_stats.sink bs in
  sink.Memsim.Trace.access 4096 Memsim.Trace.Alloc_write Memsim.Trace.Collector;
  Alcotest.(check int) "no refs counted" 0 (Analysis.Block_stats.total_refs bs);
  Alcotest.(check int) "no blocks" 0
    (Analysis.Block_stats.dynamic_summary bs).Analysis.Block_stats.blocks

(* --- Activity --------------------------------------------------------- *)

let test_activity () =
  let cache =
    Memsim.Cache.create
      (Memsim.Cache.config ~record_block_stats:true ~size_bytes:1024
         ~block_bytes:64 ())
  in
  (* Block 0: thrashing (two conflicting addresses alternating).
     Block 1: busy and well-behaved. *)
  for _ = 1 to 50 do
    Memsim.Cache.access cache 0 Memsim.Trace.Read mutator;
    Memsim.Cache.access cache 1024 Memsim.Trace.Read mutator
  done;
  for _ = 1 to 300 do
    Memsim.Cache.access cache 64 Memsim.Trace.Read mutator
  done;
  let r = Analysis.Activity.analyze cache in
  Alcotest.(check int) "points = cache blocks" 16 (Array.length r.Analysis.Activity.points);
  Alcotest.(check int) "total refs" 400 r.Analysis.Activity.total_refs;
  (* the last-ranked point is the busy good block *)
  let last = r.Analysis.Activity.points.(15) in
  Alcotest.(check int) "busiest refs" 300 last.Analysis.Activity.refs;
  Alcotest.(check bool) "final drop happens" true
    (r.Analysis.Activity.final_drop_factor > 1.0);
  Alcotest.(check bool) "global ratio sane" true
    (r.Analysis.Activity.global_miss_ratio > 0.2
     && r.Analysis.Activity.global_miss_ratio < 0.3);
  (* rendering does not raise and mentions the ratio *)
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Analysis.Activity.render ppf r;
  Format.pp_print_flush ppf ();
  Alcotest.(check bool) "render output" true (Buffer.length buf > 100)

(* --- Miss plot --------------------------------------------------------- *)

let test_miss_plot () =
  let cache =
    Memsim.Cache.create
      (Memsim.Cache.config ~size_bytes:1024 ~block_bytes:64 ())
  in
  let plot = Analysis.Miss_plot.create ~cache ~rows:16 ~refs_per_col:100 () in
  let sink = Analysis.Miss_plot.sink plot in
  (* a linear allocation sweep *)
  for i = 0 to 399 do
    sink.Memsim.Trace.access (i * 64) Memsim.Trace.Alloc_write mutator
  done;
  Alcotest.(check int) "columns" 4 (Analysis.Miss_plot.columns plot);
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Analysis.Miss_plot.render ppf plot;
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  Alcotest.(check bool) "contains dots" true (String.contains out '.');
  (* the cache behind the plot saw everything *)
  Alcotest.(check int) "cache refs" 400 (Memsim.Cache.stats cache).Memsim.Cache.refs

(* --- Ascii canvas ------------------------------------------------------ *)

let test_ascii () =
  let c = Analysis.Ascii.create ~rows:3 ~cols:8 in
  Analysis.Ascii.set c ~row:0 ~col:0 'a';
  Analysis.Ascii.set c ~row:2 ~col:7 'z';
  Analysis.Ascii.set c ~row:5 ~col:0 'x';
  (* ignored: out of range *)
  Analysis.Ascii.set c ~row:0 ~col:99 'x';
  Alcotest.(check char) "get" 'a' (Analysis.Ascii.get c ~row:0 ~col:0);
  Alcotest.(check char) "out of range get" ' ' (Analysis.Ascii.get c ~row:9 ~col:9);
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  Analysis.Ascii.render ppf c;
  Format.pp_print_flush ppf ();
  let lines = String.split_on_char '\n' (Buffer.contents buf) in
  Alcotest.(check int) "three rows plus trailing" 4 (List.length lines);
  Alcotest.(check string) "first row" "|a" (List.nth lines 0)

(* Property: the one-cycle count never exceeds the block count, and the
   CDF is monotone. *)
let summary_prop =
  QCheck.Test.make ~count:100 ~name:"block-stats invariants on random traces"
    QCheck.(list_of_size (QCheck.Gen.int_bound 300)
              (pair (int_bound 16384) (int_bound 2)))
    (fun events ->
      let bs = Analysis.Block_stats.create stats_config in
      let sink = Analysis.Block_stats.sink bs in
      List.iter
        (fun (a, k) ->
          let addr = a land lnot 3 in
          let kind =
            match k with
            | 0 -> Memsim.Trace.Read
            | 1 -> Memsim.Trace.Write
            | _ -> Memsim.Trace.Alloc_write
          in
          sink.Memsim.Trace.access addr kind mutator)
        events;
      let s = Analysis.Block_stats.dynamic_summary bs in
      let cdf =
        Analysis.Block_stats.lifetime_cdf bs ~points:[ 1; 10; 100; 1000 ]
      in
      let monotone =
        let rec ok = function
          | (_, a) :: ((_, b) :: _ as rest) -> a <= b && ok rest
          | _ -> true
        in
        ok cdf
      in
      s.Analysis.Block_stats.one_cycle + s.Analysis.Block_stats.multi_cycle
      = s.Analysis.Block_stats.blocks
      && s.Analysis.Block_stats.multi_cycle_le4 <= s.Analysis.Block_stats.multi_cycle
      && monotone)

let () =
  Alcotest.run "analysis"
    [ ( "block-stats",
        [ Alcotest.test_case "one-cycle blocks" `Quick test_one_cycle_blocks;
          Alcotest.test_case "multi-cycle block" `Quick test_multi_cycle_block;
          Alcotest.test_case "lifetimes and cdf" `Quick test_lifetimes;
          Alcotest.test_case "refcount buckets" `Quick test_refcounts;
          Alcotest.test_case "busy blocks" `Quick test_busy_blocks;
          Alcotest.test_case "collector events ignored" `Quick
            test_collector_events_ignored
        ] );
      ("activity", [ Alcotest.test_case "activity analysis" `Quick test_activity ]);
      ("miss-plot", [ Alcotest.test_case "sweep plot" `Quick test_miss_plot ]);
      ("ascii", [ Alcotest.test_case "canvas" `Quick test_ascii ]);
      ("properties", [ QCheck_alcotest.to_alcotest summary_prop ])
    ]
