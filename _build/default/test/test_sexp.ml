(* Reader tests: lexer, parser, printer, and a print/parse roundtrip
   property. *)

let datum = Alcotest.testable Sexp.Datum.pp Sexp.Datum.equal

let parse = Sexp.Parser.parse_one
let parse_all = Sexp.Parser.parse_all

let check_parse msg src expected =
  Alcotest.check datum msg expected (parse src)

let test_atoms () =
  check_parse "int" "42" (Sexp.Datum.Int 42);
  check_parse "negative int" "-17" (Sexp.Datum.Int (-17));
  check_parse "explicit positive" "+5" (Sexp.Datum.Int 5);
  check_parse "real" "3.25" (Sexp.Datum.Real 3.25);
  check_parse "real exponent" "1e3" (Sexp.Datum.Real 1000.0);
  check_parse "negative real" "-0.5" (Sexp.Datum.Real (-0.5));
  check_parse "symbol" "foo" (Sexp.Datum.Sym "foo");
  check_parse "symbol with dashes" "list->vector" (Sexp.Datum.Sym "list->vector");
  check_parse "case folding" "FooBar" (Sexp.Datum.Sym "foobar");
  check_parse "plus symbol" "+" (Sexp.Datum.Sym "+");
  check_parse "minus symbol" "-" (Sexp.Datum.Sym "-");
  check_parse "ellipsis symbol" "..." (Sexp.Datum.Sym "...");
  check_parse "true" "#t" (Sexp.Datum.Bool true);
  check_parse "false" "#f" (Sexp.Datum.Bool false)

let test_chars_strings () =
  check_parse "char" "#\\a" (Sexp.Datum.Char 'a');
  check_parse "char space" "#\\space" (Sexp.Datum.Char ' ');
  check_parse "char newline" "#\\newline" (Sexp.Datum.Char '\n');
  check_parse "char paren" "#\\(" (Sexp.Datum.Char '(');
  check_parse "string" {|"hello"|} (Sexp.Datum.Str "hello");
  check_parse "string escapes" {|"a\nb\\c\"d"|} (Sexp.Datum.Str "a\nb\\c\"d");
  check_parse "empty string" {|""|} (Sexp.Datum.Str "")

let test_lists () =
  check_parse "empty" "()" Sexp.Datum.Nil;
  check_parse "flat"
    "(1 2 3)"
    (Sexp.Datum.list [ Sexp.Datum.Int 1; Sexp.Datum.Int 2; Sexp.Datum.Int 3 ]);
  check_parse "nested"
    "((a) (b c))"
    (Sexp.Datum.list
       [ Sexp.Datum.list [ Sexp.Datum.sym "a" ];
         Sexp.Datum.list [ Sexp.Datum.sym "b"; Sexp.Datum.sym "c" ]
       ]);
  check_parse "dotted"
    "(a . b)"
    (Sexp.Datum.Cons (Sexp.Datum.sym "a", Sexp.Datum.sym "b"));
  check_parse "dotted list"
    "(a b . c)"
    (Sexp.Datum.Cons
       (Sexp.Datum.sym "a", Sexp.Datum.Cons (Sexp.Datum.sym "b", Sexp.Datum.sym "c")));
  check_parse "brackets" "[a b]"
    (Sexp.Datum.list [ Sexp.Datum.sym "a"; Sexp.Datum.sym "b" ])

let test_vectors () =
  check_parse "vector" "#(1 2)"
    (Sexp.Datum.Vec [| Sexp.Datum.Int 1; Sexp.Datum.Int 2 |]);
  check_parse "empty vector" "#()" (Sexp.Datum.Vec [||]);
  check_parse "nested vector" "#(#(a))"
    (Sexp.Datum.Vec [| Sexp.Datum.Vec [| Sexp.Datum.sym "a" |] |])

let test_quotes () =
  check_parse "quote" "'x"
    (Sexp.Datum.list [ Sexp.Datum.sym "quote"; Sexp.Datum.sym "x" ]);
  check_parse "quasiquote" "`x"
    (Sexp.Datum.list [ Sexp.Datum.sym "quasiquote"; Sexp.Datum.sym "x" ]);
  check_parse "unquote" ",x"
    (Sexp.Datum.list [ Sexp.Datum.sym "unquote"; Sexp.Datum.sym "x" ]);
  check_parse "unquote-splicing" ",@x"
    (Sexp.Datum.list [ Sexp.Datum.sym "unquote-splicing"; Sexp.Datum.sym "x" ]);
  check_parse "quoted list" "'(1 2)"
    (Sexp.Datum.list
       [ Sexp.Datum.sym "quote";
         Sexp.Datum.list [ Sexp.Datum.Int 1; Sexp.Datum.Int 2 ]
       ])

let test_comments () =
  check_parse "line comment" "; hi\n42" (Sexp.Datum.Int 42);
  check_parse "block comment" "#| bye |# 7" (Sexp.Datum.Int 7);
  check_parse "nested block comment" "#| a #| b |# c |# 7" (Sexp.Datum.Int 7);
  Alcotest.(check int)
    "comment between data" 2
    (List.length (parse_all "1 ; mid\n2"))

let test_parse_all () =
  Alcotest.(check int) "three data" 3 (List.length (parse_all "1 (2) three"));
  Alcotest.(check int) "empty input" 0 (List.length (parse_all "  ; only\n"))

let expect_error f =
  match f () with
  | exception Sexp.Parser.Error _ -> ()
  | exception Sexp.Lexer.Error _ -> ()
  | _ -> Alcotest.fail "expected a parse error"

let test_errors () =
  expect_error (fun () -> parse "(");
  expect_error (fun () -> parse ")");
  expect_error (fun () -> parse "(a . )");
  expect_error (fun () -> parse "(. a)");
  expect_error (fun () -> parse "(a . b c)");
  expect_error (fun () -> parse "#(a . b)");
  expect_error (fun () -> parse "\"unterminated");
  expect_error (fun () -> parse "#q");
  expect_error (fun () -> parse "1 2");
  expect_error (fun () -> parse "#| unclosed");
  expect_error (fun () -> parse "")

let test_positions () =
  (try
     ignore (parse_all "(ok)\n(bad . )");
     Alcotest.fail "expected error"
   with
   | Sexp.Parser.Error (_, pos) ->
     Alcotest.(check int) "line" 2 pos.Sexp.Lexer.line)

(* Property: printing and re-reading preserves structure. *)
let datum_gen =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n = 0 then
            oneof
              [ return Sexp.Datum.Nil;
                map (fun b -> Sexp.Datum.Bool b) bool;
                map (fun i -> Sexp.Datum.Int i) (int_range (-1000000) 1000000);
                map
                  (fun f -> Sexp.Datum.Real (Float.of_int f /. 16.0))
                  (int_range (-10000) 10000);
                map
                  (fun c -> Sexp.Datum.Char c)
                  (oneof [ char_range 'a' 'z'; return ' '; return '\n' ]);
                map (fun s -> Sexp.Datum.Str s) (string_size ~gen:printable (int_bound 12));
                map
                  (fun s -> Sexp.Datum.Sym ("s" ^ string_of_int s))
                  (int_bound 40)
              ]
          else
            oneof
              [ self 0;
                map2
                  (fun a b -> Sexp.Datum.Cons (a, b))
                  (self (n / 2)) (self (n / 2));
                map
                  (fun xs -> Sexp.Datum.Vec (Array.of_list xs))
                  (list_size (int_bound 4) (self (n / 3)))
              ])
        n)

let roundtrip_prop =
  QCheck.Test.make ~count:500 ~name:"print/parse roundtrip"
    (QCheck.make datum_gen ~print:Sexp.Datum.to_string)
    (fun d ->
      let printed = Sexp.Datum.to_string d in
      Sexp.Datum.equal d (Sexp.Parser.parse_one printed))

let () =
  Alcotest.run "sexp"
    [ ( "lexer+parser",
        [ Alcotest.test_case "atoms" `Quick test_atoms;
          Alcotest.test_case "chars and strings" `Quick test_chars_strings;
          Alcotest.test_case "lists" `Quick test_lists;
          Alcotest.test_case "vectors" `Quick test_vectors;
          Alcotest.test_case "quotes" `Quick test_quotes;
          Alcotest.test_case "comments" `Quick test_comments;
          Alcotest.test_case "parse_all" `Quick test_parse_all;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "positions" `Quick test_positions
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest roundtrip_prop ])
    ]
