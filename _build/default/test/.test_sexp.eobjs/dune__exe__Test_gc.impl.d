test/test_gc.ml: Alcotest List Memsim Printf QCheck QCheck_alcotest Vscheme
