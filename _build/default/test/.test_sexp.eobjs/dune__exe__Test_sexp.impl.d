test/test_sexp.ml: Alcotest Array Float List QCheck QCheck_alcotest Sexp
