test/test_memsim.ml: Alcotest Array Filename Format Fun List Memsim Printf QCheck QCheck_alcotest Sys
