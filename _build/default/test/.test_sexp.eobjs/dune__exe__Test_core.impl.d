test/test_core.ml: Alcotest Buffer Core Format List Memsim String Vscheme Workloads
