test/test_heap.ml: Alcotest Float List Memsim Option Printf QCheck QCheck_alcotest String Vscheme
