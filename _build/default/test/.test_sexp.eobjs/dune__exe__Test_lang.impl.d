test/test_lang.ml: Alcotest Buffer Format List Printf QCheck QCheck_alcotest String Vscheme
