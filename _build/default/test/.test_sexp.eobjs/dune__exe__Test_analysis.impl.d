test/test_analysis.ml: Alcotest Analysis Array Buffer Float Format Fun List Memsim QCheck QCheck_alcotest String
