test/test_workloads.ml: Alcotest List Option String Vscheme Workloads
