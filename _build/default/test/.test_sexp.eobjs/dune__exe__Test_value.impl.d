test/test_value.ml: Alcotest Char List Printf QCheck QCheck_alcotest Vscheme
