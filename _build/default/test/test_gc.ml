(* Collector tests.  The strongest check is differential: any program
   must compute the same value and produce the same output under every
   collector configuration, since collection is semantically
   invisible. *)

let machine gc =
  Vscheme.Machine.create
    { Vscheme.Machine.default_config with
      gc;
      heap_bytes = 16 * 1024 * 1024
    }

let eval m src =
  Vscheme.Machine.value_to_string m (Vscheme.Machine.eval_string m src)

let configs =
  [ ("no-gc", Vscheme.Machine.No_gc);
    ("cheney-128k", Vscheme.Machine.Cheney { semispace_bytes = 128 * 1024 });
    ("cheney-1m", Vscheme.Machine.Cheney { semispace_bytes = 1024 * 1024 });
    ( "gen-32k/2m",
      Vscheme.Machine.Generational
        { nursery_bytes = 32 * 1024; old_bytes = 2 * 1024 * 1024 } );
    ( "gen-256k/2m",
      Vscheme.Machine.Generational
        { nursery_bytes = 256 * 1024; old_bytes = 2 * 1024 * 1024 } );
    ( "marksweep-64k/4m",
      Vscheme.Machine.Mark_sweep
        { nursery_bytes = 64 * 1024; old_bytes = 4 * 1024 * 1024 } );
    ( "marksweep-16k/1m",
      Vscheme.Machine.Mark_sweep
        { nursery_bytes = 16 * 1024; old_bytes = 1024 * 1024 } )
  ]

let differential name src =
  Alcotest.test_case name `Quick (fun () ->
      let results =
        List.map
          (fun (cname, gc) ->
            let m = machine gc in
            let v = eval m src in
            (cname, v, Vscheme.Machine.output m))
          configs
      in
      match results with
      | [] -> assert false
      | (_, v0, out0) :: rest ->
        List.iter
          (fun (cname, v, out) ->
            Alcotest.(check string) (name ^ " value under " ^ cname) v0 v;
            Alcotest.(check string) (name ^ " output under " ^ cname) out0 out)
          rest)

let differential_cases =
  [ differential "list churn"
      "(define keep '())\n\
       (let loop ((i 0) (acc 0))\n\
       \  (if (= i 3000) (cons acc (length keep))\n\
       \      (let ((l (map (lambda (x) (* x x)) (iota 15))))\n\
       \        (when (= 0 (remainder i 100)) (set! keep (cons (car l) keep)))\n\
       \        (loop (+ i 1) (+ acc (fold-left + 0 l))))))";
    differential "deep structure survives"
      "(define (build n) (if (= n 0) '() (cons (vector n (number->string n)) (build (- n 1)))))\n\
       (define big (build 800))\n\
       (let loop ((i 0)) (when (< i 40) (iota 500) (loop (+ i 1))))\n\
       (fold-left (lambda (acc v) (+ acc (vector-ref v 0))) 0 big)";
    differential "mutation via set-cdr!"
      "(define head (cons 0 '()))\n\
       (define tail head)\n\
       (let loop ((i 1))\n\
       \  (when (< i 3000)\n\
       \    (let ((cell (cons i '())))\n\
       \      (set-cdr! tail cell)\n\
       \      (set! tail cell))\n\
       \    (iota 30)\n\
       \    (loop (+ i 1))))\n\
       (fold-left + 0 head)";
    differential "strings and symbols"
      "(let loop ((i 0) (acc '()))\n\
       \  (if (= i 500) (length acc)\n\
       \      (loop (+ i 1) (cons (string-append \"s\" (number->string i)) acc))))";
    differential "closures survive collection"
      "(define fs '())\n\
       (let loop ((i 0))\n\
       \  (when (< i 200)\n\
       \    (set! fs (cons (lambda () (* i i)) fs))\n\
       \    (iota 200)\n\
       \    (loop (+ i 1))))\n\
       (fold-left (lambda (acc f) (+ acc (f))) 0 fs)";
    differential "flonum data"
      "(let loop ((i 0) (acc 0.0))\n\
       \  (if (= i 5000) (inexact->exact (* acc 100.0))\n\
       \      (loop (+ i 1) (+ acc (sqrt (exact->inexact i))))))";
    differential "display output"
      "(let loop ((i 0))\n\
       \  (when (< i 50)\n\
       \    (display i) (display \" \")\n\
       \    (iota 500)\n\
       \    (loop (+ i 1))))"
  ]

(* --- Targeted collector behaviour ------------------------------------ *)

let test_cheney_collects () =
  let m = machine (Vscheme.Machine.Cheney { semispace_bytes = 64 * 1024 }) in
  ignore (Vscheme.Machine.eval_string m "(let loop ((i 0)) (when (< i 3000) (iota 50) (loop (+ i 1))))");
  let st = Vscheme.Gc_cheney.stats (Vscheme.Machine.heap m) in
  Alcotest.(check bool) "collected at least once" true (st.Vscheme.Gc_cheney.collections > 0);
  Alcotest.(check bool) "copied some words" true (st.Vscheme.Gc_cheney.words_copied > 0);
  Alcotest.(check int) "machine agrees" st.Vscheme.Gc_cheney.collections
    (Vscheme.Machine.stats m).Vscheme.Machine.collections

let test_cheney_oom_when_live_too_big () =
  let m = machine (Vscheme.Machine.Cheney { semispace_bytes = 32 * 1024 }) in
  match
    Vscheme.Machine.eval_string m
      "(define (build n acc) (if (= n 0) acc (build (- n 1) (cons n acc)))) (build 100000 '())"
  with
  | exception Vscheme.Heap.Out_of_memory _ -> ()
  | _ -> Alcotest.fail "expected Out_of_memory"

let test_generational_minor_and_major () =
  let m =
    machine
      (Vscheme.Machine.Generational
         { nursery_bytes = 16 * 1024; old_bytes = 96 * 1024 })
  in
  (* retain enough to force promotions and eventually a major GC *)
  ignore
    (Vscheme.Machine.eval_string m
       "(define keep '())\n\
        (let loop ((i 0))\n\
        \  (when (< i 6000)\n\
        \    (set! keep (cons (vector i i i) keep))\n\
        \    (when (> (length keep) 600) (set! keep '()))\n\
        \    (loop (+ i 1))))");
  let st = Vscheme.Gc_generational.stats (Vscheme.Machine.heap m) in
  Alcotest.(check bool) "minor collections" true
    (st.Vscheme.Gc_generational.minor_collections > 0);
  Alcotest.(check bool) "major collections" true
    (st.Vscheme.Gc_generational.major_collections > 0);
  Alcotest.(check bool) "promoted words" true
    (st.Vscheme.Gc_generational.words_promoted > 0)

let test_write_barrier_records () =
  let m =
    machine
      (Vscheme.Machine.Generational
         { nursery_bytes = 32 * 1024; old_bytes = 2 * 1024 * 1024 })
  in
  (* Build an old object, then store nursery pointers into it. *)
  ignore
    (Vscheme.Machine.eval_string m
       "(define old (vector '() '() '()))\n\
        (iota 20000)  ; force a minor GC so old is promoted\n\
        (vector-set! old 0 (list 1 2 3))\n\
        (vector-set! old 1 (list 4 5))\n\
        (iota 20000)  ; another GC: the barrier must keep old's lists alive\n\
        #t");
  let st = Vscheme.Gc_generational.stats (Vscheme.Machine.heap m) in
  Alcotest.(check bool) "barrier hits recorded" true
    (st.Vscheme.Gc_generational.barrier_hits > 0);
  Alcotest.(check string) "old->new pointers survive" "(1 2 3) (4 5)"
    (eval m "(begin (display (vector-ref old 0)) (display \" \") (display (vector-ref old 1)) (vector-ref old 1))"
     |> fun _ -> Vscheme.Machine.output m)

let test_collector_refs_attributed () =
  let mut = ref 0 in
  let col = ref 0 in
  let sink =
    { Memsim.Trace.access =
        (fun _ _ phase ->
          match phase with
          | Memsim.Trace.Mutator -> incr mut
          | Memsim.Trace.Collector -> incr col)
    }
  in
  let m =
    Vscheme.Machine.create
      { Vscheme.Machine.default_config with
        gc = Vscheme.Machine.Cheney { semispace_bytes = 64 * 1024 };
        sink
      }
  in
  ignore (Vscheme.Machine.eval_string m "(let loop ((i 0)) (when (< i 3000) (iota 50) (loop (+ i 1))))");
  Alcotest.(check bool) "collector made traced references" true (!col > 0);
  Alcotest.(check bool) "mutator dominates" true (!mut > !col)

let test_rehash_after_gc () =
  (* A table keyed by heap objects must still find its keys after the
     keys move, and the stamp mechanism must count the rehash. *)
  let m = machine (Vscheme.Machine.Cheney { semispace_bytes = 64 * 1024 }) in
  let v =
    eval m
      "(define t (make-table))\n\
       (define keys '())\n\
       (let loop ((i 0))\n\
       \  (when (< i 50)\n\
       \    (let ((k (cons i i)))\n\
       \      (set! keys (cons k keys))\n\
       \      (table-set! t k (* i 10)))\n\
       \    (loop (+ i 1))))\n\
       (let loop ((i 0)) (when (< i 80) (iota 400) (loop (+ i 1))))\n\
       (fold-left (lambda (acc k) (+ acc (table-ref t k))) 0 keys)"
  in
  Alcotest.(check string) "all keys found after moving" "12250" v;
  Alcotest.(check bool) "collections happened" true
    ((Vscheme.Machine.stats m).Vscheme.Machine.collections > 0)

let test_gc_instruction_charging () =
  let m = machine (Vscheme.Machine.Cheney { semispace_bytes = 64 * 1024 }) in
  ignore (Vscheme.Machine.eval_string m "(let loop ((i 0)) (when (< i 2000) (iota 60) (loop (+ i 1))))");
  let st = Vscheme.Machine.stats m in
  Alcotest.(check bool) "collector charged" true (st.Vscheme.Machine.collector_insns > 0)

let test_aggressive_collects_more () =
  let run nursery =
    let m =
      machine
        (Vscheme.Machine.Generational
           { nursery_bytes = nursery; old_bytes = 2 * 1024 * 1024 })
    in
    ignore (Vscheme.Machine.eval_string m "(let loop ((i 0)) (when (< i 4000) (iota 40) (loop (+ i 1))))");
    (Vscheme.Machine.stats m).Vscheme.Machine.collections
  in
  let aggressive = run (16 * 1024) in
  let infrequent = run (512 * 1024) in
  Alcotest.(check bool)
    (Printf.sprintf "aggressive (%d) > infrequent (%d)" aggressive infrequent)
    true (aggressive > infrequent)

let test_marksweep_reuses_storage () =
  let m =
    machine
      (Vscheme.Machine.Mark_sweep
         { nursery_bytes = 32 * 1024; old_bytes = 512 * 1024 })
  in
  (* Retain then drop repeatedly: majors must recycle the old
     generation through the free lists. *)
  ignore
    (Vscheme.Machine.eval_string m
       "(define keep '())\n\
        (let loop ((i 0))\n\
        \  (when (< i 30000)\n\
        \    (set! keep (cons (vector i i i) keep))\n\
        \    (when (> (length keep) 800) (set! keep '()))\n\
        \    (loop (+ i 1))))");
  let st = Vscheme.Gc_marksweep.stats (Vscheme.Machine.heap m) in
  Alcotest.(check bool) "minors ran" true
    (st.Vscheme.Gc_marksweep.minor_collections > 0);
  Alcotest.(check bool) "majors ran" true
    (st.Vscheme.Gc_marksweep.major_collections > 0);
  Alcotest.(check bool) "sweeping recovered storage" true
    (st.Vscheme.Gc_marksweep.words_swept > 0);
  Alcotest.(check bool) "free lists non-empty afterwards" true
    (Vscheme.Gc_marksweep.free_words (Vscheme.Machine.heap m) > 0)

let test_marksweep_barrier () =
  let m =
    machine
      (Vscheme.Machine.Mark_sweep
         { nursery_bytes = 32 * 1024; old_bytes = 2 * 1024 * 1024 })
  in
  ignore
    (Vscheme.Machine.eval_string m
       "(define old (vector '() '()))\n\
        (let loop ((i 0)) (when (< i 60) (iota 400) (loop (+ i 1))))\n\
        (vector-set! old 0 (list 7 8 9))\n\
        (let loop ((i 0)) (when (< i 60) (iota 400) (loop (+ i 1))))\n\
        #t");
  let st = Vscheme.Gc_marksweep.stats (Vscheme.Machine.heap m) in
  Alcotest.(check bool) "barrier hits" true
    (st.Vscheme.Gc_marksweep.barrier_hits > 0);
  Alcotest.(check string) "old->new survives" "(7 8 9)"
    (eval m "(vector-ref old 0)")

(* Property: random cons-tree construction with interleaved garbage is
   GC-invariant. *)
let gc_invariance_prop =
  QCheck.Test.make ~count:20 ~name:"random churn is GC-invariant"
    QCheck.(pair (int_range 1 40) (int_range 1 60))
    (fun (keep_every, per_round) ->
      let src =
        Printf.sprintf
          "(define keep '())\n\
           (let loop ((i 0) (acc 0))\n\
           \  (if (= i 400) (cons acc (length keep))\n\
           \      (let ((l (iota %d)))\n\
           \        (when (= 0 (remainder i %d))\n\
           \          (set! keep (cons (car l) keep)))\n\
           \        (loop (+ i 1) (+ acc (length l))))))"
          per_round keep_every
      in
      let expected = eval (machine Vscheme.Machine.No_gc) src in
      List.for_all
        (fun (_, gc) -> eval (machine gc) src = expected)
        (List.tl configs))

let () =
  Alcotest.run "gc"
    [ ("differential", differential_cases);
      ( "collectors",
        [ Alcotest.test_case "cheney collects" `Quick test_cheney_collects;
          Alcotest.test_case "cheney OOM on oversized live set" `Quick
            test_cheney_oom_when_live_too_big;
          Alcotest.test_case "generational minor+major" `Quick
            test_generational_minor_and_major;
          Alcotest.test_case "write barrier" `Quick test_write_barrier_records;
          Alcotest.test_case "collector refs attributed" `Quick
            test_collector_refs_attributed;
          Alcotest.test_case "tables rehash after GC" `Quick test_rehash_after_gc;
          Alcotest.test_case "collector instructions charged" `Quick
            test_gc_instruction_charging;
          Alcotest.test_case "aggressive collects more often" `Quick
            test_aggressive_collects_more;
          Alcotest.test_case "mark-sweep reuses storage" `Quick
            test_marksweep_reuses_storage;
          Alcotest.test_case "mark-sweep barrier" `Quick test_marksweep_barrier
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest gc_invariance_prop ])
    ]
