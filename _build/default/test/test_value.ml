(* Value-encoding tests: tagging roundtrips, distinctness of
   immediates, header packing. *)

let test_fixnums () =
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "fixnum %d" n)
        n
        (Vscheme.Value.fixnum_val (Vscheme.Value.fixnum n)))
    [ 0; 1; -1; 42; -42; 1000000; -1000000; Vscheme.Value.max_fixnum;
      Vscheme.Value.min_fixnum ];
  Alcotest.(check bool) "is_fixnum" true (Vscheme.Value.is_fixnum (Vscheme.Value.fixnum 7));
  Alcotest.(check bool) "fixnum not pointer" false
    (Vscheme.Value.is_pointer (Vscheme.Value.fixnum 7));
  Alcotest.(check bool) "fixnum not char" false
    (Vscheme.Value.is_char (Vscheme.Value.fixnum 7))

let test_pointers () =
  List.iter
    (fun a ->
      Alcotest.(check int)
        (Printf.sprintf "pointer %d" a)
        a
        (Vscheme.Value.pointer_val (Vscheme.Value.pointer a)))
    [ 0; 1; 4096; 16777216 ];
  Alcotest.(check bool) "is_pointer" true
    (Vscheme.Value.is_pointer (Vscheme.Value.pointer 100));
  Alcotest.(check bool) "pointer not fixnum" false
    (Vscheme.Value.is_fixnum (Vscheme.Value.pointer 100))

let test_immediates () =
  let imms =
    [ Vscheme.Value.false_v; Vscheme.Value.true_v; Vscheme.Value.nil;
      Vscheme.Value.unspecified; Vscheme.Value.eof; Vscheme.Value.undefined ]
  in
  (* all distinct *)
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i <> j then
            Alcotest.(check bool) "immediates distinct" false (a = b))
        imms)
    imms;
  List.iter
    (fun v ->
      Alcotest.(check bool) "immediate not fixnum" false (Vscheme.Value.is_fixnum v);
      Alcotest.(check bool) "immediate not pointer" false (Vscheme.Value.is_pointer v);
      Alcotest.(check bool) "immediate not char" false (Vscheme.Value.is_char v))
    imms

let test_truthiness () =
  Alcotest.(check bool) "false is falsy" false
    (Vscheme.Value.is_truthy Vscheme.Value.false_v);
  Alcotest.(check bool) "nil is truthy" true
    (Vscheme.Value.is_truthy Vscheme.Value.nil);
  Alcotest.(check bool) "zero is truthy" true
    (Vscheme.Value.is_truthy (Vscheme.Value.fixnum 0))

let test_chars () =
  List.iter
    (fun c ->
      Alcotest.(check char)
        (Printf.sprintf "char %C" c)
        c
        (Vscheme.Value.char_val (Vscheme.Value.char c)))
    [ 'a'; 'Z'; '0'; ' '; '\n'; '\000'; '\255' ];
  Alcotest.(check bool) "is_char" true (Vscheme.Value.is_char (Vscheme.Value.char 'q'))

let test_headers () =
  List.iter
    (fun tag ->
      List.iter
        (fun len ->
          let h = Vscheme.Value.header tag ~len in
          Alcotest.(check bool)
            "tag roundtrip" true
            (Vscheme.Value.header_tag h = tag);
          Alcotest.(check int) "len roundtrip" len (Vscheme.Value.header_len h))
        [ 0; 1; 2; 100; 65536 ])
    [ Vscheme.Value.Pair; Vscheme.Value.Vector; Vscheme.Value.Closure;
      Vscheme.Value.String; Vscheme.Value.Symbol; Vscheme.Value.Flonum;
      Vscheme.Value.Table; Vscheme.Value.Cell; Vscheme.Value.Forward;
      Vscheme.Value.Free ]

let test_object_words () =
  (* The footprint leaves room for a forwarding pointer. *)
  Alcotest.(check int) "empty vector" 2
    (Vscheme.Value.object_words (Vscheme.Value.header Vscheme.Value.Vector ~len:0));
  Alcotest.(check int) "pair" 3
    (Vscheme.Value.object_words (Vscheme.Value.header Vscheme.Value.Pair ~len:2));
  Alcotest.(check int) "big vector" 11
    (Vscheme.Value.object_words (Vscheme.Value.header Vscheme.Value.Vector ~len:10))

(* Property: the three tag classes are mutually exclusive. *)
let tag_classes_prop =
  QCheck.Test.make ~count:1000 ~name:"fixnum/pointer/char classes exclusive"
    QCheck.(int_range (-1000000) 1000000)
    (fun n ->
      let classify v =
        (if Vscheme.Value.is_fixnum v then 1 else 0)
        + (if Vscheme.Value.is_pointer v then 1 else 0)
        + if Vscheme.Value.is_char v then 1 else 0
      in
      classify (Vscheme.Value.fixnum n) = 1
      && classify (Vscheme.Value.pointer (abs n)) = 1
      && classify (Vscheme.Value.char (Char.chr (abs n mod 256))) = 1)

let () =
  Alcotest.run "value"
    [ ( "encoding",
        [ Alcotest.test_case "fixnums" `Quick test_fixnums;
          Alcotest.test_case "pointers" `Quick test_pointers;
          Alcotest.test_case "immediates" `Quick test_immediates;
          Alcotest.test_case "truthiness" `Quick test_truthiness;
          Alcotest.test_case "chars" `Quick test_chars;
          Alcotest.test_case "headers" `Quick test_headers;
          Alcotest.test_case "object words" `Quick test_object_words
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest tag_classes_prop ])
    ]
