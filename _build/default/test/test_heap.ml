(* Heap tests: areas, allocation, typed objects, interning, tracing. *)

let mk ?(words = 65536) ?sink () =
  let sink = Option.value sink ~default:Memsim.Trace.null in
  let mem = Vscheme.Mem.create ~sink ~words in
  (mem, Vscheme.Heap.create ~mem ~static_words:1024 ~stack_words:512)

let test_areas () =
  let _, h = mk () in
  Alcotest.(check int) "static base" 0 (Vscheme.Heap.static_base h);
  Alcotest.(check int) "stack base" 1024 (Vscheme.Heap.stack_base h);
  Alcotest.(check int) "stack limit" 1536 (Vscheme.Heap.stack_limit h);
  Alcotest.(check int) "dynamic base" 1536 (Vscheme.Heap.dynamic_base h);
  Alcotest.(check int) "dynamic limit" 65536 (Vscheme.Heap.dynamic_limit h);
  Alcotest.(check bool) "dynamic membership" true (Vscheme.Heap.is_dynamic h 2000);
  Alcotest.(check bool) "static not dynamic" false (Vscheme.Heap.is_dynamic h 100)

let test_pairs () =
  let _, h = mk () in
  let p = Vscheme.Heap.cons h (Vscheme.Value.fixnum 1) (Vscheme.Value.fixnum 2) in
  Alcotest.(check int) "car" 1 (Vscheme.Value.fixnum_val (Vscheme.Heap.car h p));
  Alcotest.(check int) "cdr" 2 (Vscheme.Value.fixnum_val (Vscheme.Heap.cdr h p));
  Vscheme.Heap.set_car h p (Vscheme.Value.fixnum 10);
  Vscheme.Heap.set_cdr h p Vscheme.Value.nil;
  Alcotest.(check int) "set-car" 10 (Vscheme.Value.fixnum_val (Vscheme.Heap.car h p));
  Alcotest.(check bool) "set-cdr" true (Vscheme.Heap.cdr h p = Vscheme.Value.nil);
  Alcotest.(check bool) "has_tag pair" true (Vscheme.Heap.has_tag h p Vscheme.Value.Pair);
  Alcotest.(check bool) "not vector" false (Vscheme.Heap.has_tag h p Vscheme.Value.Vector)

let test_type_errors () =
  let _, h = mk () in
  let check_err f =
    match f () with
    | exception Vscheme.Heap.Runtime_error _ -> ()
    | _ -> Alcotest.fail "expected Runtime_error"
  in
  check_err (fun () -> Vscheme.Heap.car h (Vscheme.Value.fixnum 3));
  check_err (fun () -> Vscheme.Heap.car h Vscheme.Value.nil);
  let v = Vscheme.Heap.make_vector h 3 Vscheme.Value.nil in
  check_err (fun () -> Vscheme.Heap.car h v);
  check_err (fun () -> Vscheme.Heap.vector_ref h v 3);
  check_err (fun () -> Vscheme.Heap.vector_ref h v (-1))

let test_vectors () =
  let _, h = mk () in
  let v = Vscheme.Heap.make_vector h 5 (Vscheme.Value.fixnum 9) in
  Alcotest.(check int) "length" 5 (Vscheme.Heap.vector_length h v);
  Alcotest.(check int) "fill" 9 (Vscheme.Value.fixnum_val (Vscheme.Heap.vector_ref h v 4));
  Vscheme.Heap.vector_set h v 2 (Vscheme.Value.fixnum (-1));
  Alcotest.(check int) "set" (-1) (Vscheme.Value.fixnum_val (Vscheme.Heap.vector_ref h v 2));
  let empty = Vscheme.Heap.make_vector h 0 Vscheme.Value.nil in
  Alcotest.(check int) "empty length" 0 (Vscheme.Heap.vector_length h empty)

let test_flonums () =
  let _, h = mk () in
  List.iter
    (fun f ->
      let v = Vscheme.Heap.flonum h f in
      Alcotest.(check (float 0.0))
        (Printf.sprintf "flonum %g" f)
        f
        (Vscheme.Heap.flonum_val h v))
    [ 0.0; 1.5; -3.25; 1e300; -1e-300; Float.pi ]

let test_strings () =
  let _, h = mk () in
  List.iter
    (fun s ->
      let v = Vscheme.Heap.make_string h s in
      Alcotest.(check string) ("string " ^ s) s (Vscheme.Heap.string_val h v);
      Alcotest.(check int) "length" (String.length s) (Vscheme.Heap.string_length h v))
    [ ""; "a"; "ab"; "abc"; "abcd"; "abcde"; "hello, world" ];
  let v = Vscheme.Heap.make_string h "abcdef" in
  Alcotest.(check char) "string_ref" 'd' (Vscheme.Heap.string_ref h v 3)

let test_cells () =
  let _, h = mk () in
  let c = Vscheme.Heap.make_cell h (Vscheme.Value.fixnum 5) in
  Alcotest.(check int) "cell_ref" 5 (Vscheme.Value.fixnum_val (Vscheme.Heap.cell_ref h c));
  Vscheme.Heap.cell_set h c Vscheme.Value.true_v;
  Alcotest.(check bool) "cell_set" true (Vscheme.Heap.cell_ref h c = Vscheme.Value.true_v)

let test_symbols () =
  let _, h = mk () in
  let a1 = Vscheme.Heap.intern h "foo" in
  let a2 = Vscheme.Heap.intern h "foo" in
  let b = Vscheme.Heap.intern h "bar" in
  Alcotest.(check bool) "interning is idempotent" true (a1 = a2);
  Alcotest.(check bool) "distinct symbols differ" false (a1 = b);
  Alcotest.(check string) "symbol name" "foo" (Vscheme.Heap.symbol_name h a1);
  Alcotest.(check bool) "find" true (Vscheme.Heap.find_symbol h "bar" = Some b);
  Alcotest.(check bool) "find absent" true (Vscheme.Heap.find_symbol h "baz" = None);
  (* symbols live in the static area *)
  Alcotest.(check bool) "static" false
    (Vscheme.Heap.is_dynamic h (Vscheme.Value.pointer_val a1))

let test_static_allocation () =
  let _, h = mk () in
  let p =
    Vscheme.Heap.cons ~area:Vscheme.Heap.Static h Vscheme.Value.nil Vscheme.Value.nil
  in
  Alcotest.(check bool) "static pair" false
    (Vscheme.Heap.is_dynamic h (Vscheme.Value.pointer_val p));
  Alcotest.(check bool) "works like a pair" true
    (Vscheme.Heap.car h p = Vscheme.Value.nil)

let test_out_of_memory () =
  let _, h = mk ~words:4096 () in
  (* no collector installed: exhausting the dynamic area raises *)
  match
    let rec loop acc =
      loop (Vscheme.Heap.cons h acc acc)
    in
    loop Vscheme.Value.nil
  with
  | exception Vscheme.Heap.Out_of_memory _ -> ()
  | _ -> Alcotest.fail "expected Out_of_memory"

let test_static_exhaustion () =
  let _, h = mk () in
  match
    for _ = 1 to 10000 do
      ignore (Vscheme.Heap.make_string ~area:Vscheme.Heap.Static h "xxxxxxxxxxxx")
    done
  with
  | exception Vscheme.Heap.Out_of_memory _ -> ()
  | _ -> Alcotest.fail "expected Out_of_memory"

let test_tracing () =
  (* cons = 1 alloc-write header + 2 alloc-write fields; car = 1 read *)
  let events = ref [] in
  let sink =
    { Memsim.Trace.access = (fun addr kind _ -> events := (addr, kind) :: !events) }
  in
  let _, h = mk ~sink () in
  let p = Vscheme.Heap.cons h (Vscheme.Value.fixnum 1) (Vscheme.Value.fixnum 2) in
  let writes = List.length !events in
  Alcotest.(check int) "three alloc writes" 3 writes;
  List.iter
    (fun (_, k) ->
      Alcotest.(check bool) "all alloc writes" true (k = Memsim.Trace.Alloc_write))
    !events;
  ignore (Vscheme.Heap.car h p);
  Alcotest.(check int) "one more event" 4 (List.length !events);
  (match !events with
   | (_, k) :: _ -> Alcotest.(check bool) "car is a read" true (k = Memsim.Trace.Read)
   | [] -> Alcotest.fail "no events");
  (* byte addressing: the header's byte address is 4x its word address *)
  let header_byte_addr = List.nth (List.rev !events) 0 |> fst in
  Alcotest.(check int) "word-aligned byte address" 0 (header_byte_addr mod 4)

let test_charging () =
  let _, h = mk () in
  Vscheme.Heap.charge_mutator h 10;
  Vscheme.Heap.charge_mutator h 5;
  Vscheme.Heap.charge_collector h 7;
  Alcotest.(check int) "mutator insns" 15 (Vscheme.Heap.mutator_insns h);
  Alcotest.(check int) "collector insns" 7 (Vscheme.Heap.collector_insns h);
  Alcotest.(check int) "allocation counter" 0 (Vscheme.Heap.words_allocated h);
  ignore (Vscheme.Heap.cons h Vscheme.Value.nil Vscheme.Value.nil);
  Alcotest.(check int) "pair is three words" 3 (Vscheme.Heap.words_allocated h);
  Alcotest.(check int) "bytes" 12 (Vscheme.Heap.bytes_allocated h)

let test_printer () =
  let _, h = mk () in
  let show v = Vscheme.Printer.to_string h ~quote:true v in
  Alcotest.(check string) "fixnum" "42" (show (Vscheme.Value.fixnum 42));
  Alcotest.(check string) "nil" "()" (show Vscheme.Value.nil);
  let l =
    Vscheme.Heap.cons h (Vscheme.Value.fixnum 1)
      (Vscheme.Heap.cons h (Vscheme.Value.fixnum 2) Vscheme.Value.nil)
  in
  Alcotest.(check string) "list" "(1 2)" (show l);
  let d = Vscheme.Heap.cons h (Vscheme.Value.fixnum 1) (Vscheme.Value.fixnum 2) in
  Alcotest.(check string) "dotted" "(1 . 2)" (show d);
  let s = Vscheme.Heap.make_string h "hi\"x" in
  Alcotest.(check string) "write string" "\"hi\\\"x\"" (show s);
  Alcotest.(check string) "display string" "hi\"x"
    (Vscheme.Printer.to_string h ~quote:false s);
  let v = Vscheme.Heap.make_vector h 2 (Vscheme.Value.fixnum 0) in
  Alcotest.(check string) "vector" "#(0 0)" (show v);
  Alcotest.(check string) "symbol" "abc" (show (Vscheme.Heap.intern h "abc"));
  Alcotest.(check string) "char" "#\\a" (show (Vscheme.Value.char 'a'))

(* Property: heap roundtrip of arbitrary fixnum lists. *)
let list_roundtrip_prop =
  QCheck.Test.make ~count:200 ~name:"cons list roundtrip"
    QCheck.(list (int_range (-1000) 1000))
    (fun xs ->
      let _, h = mk ~words:(1 lsl 18) () in
      let l =
        List.fold_right
          (fun x acc -> Vscheme.Heap.cons h (Vscheme.Value.fixnum x) acc)
          xs Vscheme.Value.nil
      in
      let rec read v =
        if v = Vscheme.Value.nil then []
        else
          Vscheme.Value.fixnum_val (Vscheme.Heap.car h v) :: read (Vscheme.Heap.cdr h v)
      in
      read l = xs)

let string_roundtrip_prop =
  QCheck.Test.make ~count:200 ~name:"string roundtrip"
    QCheck.(string_of_size (QCheck.Gen.int_bound 64))
    (fun s ->
      let _, h = mk () in
      Vscheme.Heap.string_val h (Vscheme.Heap.make_string h s) = s)

let () =
  Alcotest.run "heap"
    [ ( "heap",
        [ Alcotest.test_case "areas" `Quick test_areas;
          Alcotest.test_case "pairs" `Quick test_pairs;
          Alcotest.test_case "type errors" `Quick test_type_errors;
          Alcotest.test_case "vectors" `Quick test_vectors;
          Alcotest.test_case "flonums" `Quick test_flonums;
          Alcotest.test_case "strings" `Quick test_strings;
          Alcotest.test_case "cells" `Quick test_cells;
          Alcotest.test_case "symbols" `Quick test_symbols;
          Alcotest.test_case "static allocation" `Quick test_static_allocation;
          Alcotest.test_case "out of memory" `Quick test_out_of_memory;
          Alcotest.test_case "static exhaustion" `Quick test_static_exhaustion;
          Alcotest.test_case "tracing" `Quick test_tracing;
          Alcotest.test_case "charging" `Quick test_charging;
          Alcotest.test_case "printer" `Quick test_printer
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest list_roundtrip_prop;
          QCheck_alcotest.to_alcotest string_roundtrip_prop
        ] )
    ]
