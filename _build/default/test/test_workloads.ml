(* Workload tests: each of the five §3 analogues loads, runs at tiny
   scale, produces its expected self-checked result, and behaves
   identically under a collector. *)

let run ?gc w ~scale =
  let cfg =
    { Vscheme.Machine.default_config with
      heap_bytes = 32 * 1024 * 1024;
      gc = Option.value gc ~default:Vscheme.Machine.No_gc
    }
  in
  let m = Vscheme.Machine.create cfg in
  Workloads.Workload.load m w;
  let v = Workloads.Workload.run m w ~scale in
  (Vscheme.Machine.value_to_string m v, Vscheme.Machine.stats m)

let test_registry () =
  Alcotest.(check int) "five workloads" 5 (List.length Workloads.Workload.all);
  Alcotest.(check (list string)) "paper order"
    [ "selfcomp"; "prover"; "lred"; "nbody"; "mexpr" ]
    (List.map (fun w -> w.Workloads.Workload.name) Workloads.Workload.all);
  List.iter
    (fun w ->
      Alcotest.(check bool)
        (w.Workloads.Workload.name ^ " findable")
        true
        (match Workloads.Workload.find w.Workloads.Workload.name with
         | Some found ->
           String.equal found.Workloads.Workload.name w.Workloads.Workload.name
         | None -> false);
      Alcotest.(check bool)
        (w.Workloads.Workload.name ^ " has substantial source")
        true
        (Workloads.Workload.source_lines w > 50))
    Workloads.Workload.all;
  Alcotest.(check bool) "unknown not found" true
    (match Workloads.Workload.find "nope" with
     | None -> true
     | Some _ -> false)

let test_runs w =
  Alcotest.test_case (w.Workloads.Workload.name ^ " runs") `Quick (fun () ->
      let v, stats = run w ~scale:1 in
      Alcotest.(check bool) "nonempty result" true (String.length v > 0);
      Alcotest.(check bool) "allocates" true
        (stats.Vscheme.Machine.bytes_allocated > 100_000);
      Alcotest.(check bool) "executes" true
        (stats.Vscheme.Machine.mutator_insns > 1_000_000))

let test_deterministic w =
  Alcotest.test_case (w.Workloads.Workload.name ^ " deterministic") `Quick
    (fun () ->
      let v1, s1 = run w ~scale:1 in
      let v2, s2 = run w ~scale:1 in
      Alcotest.(check string) "same value" v1 v2;
      Alcotest.(check int) "same instructions" s1.Vscheme.Machine.mutator_insns
        s2.Vscheme.Machine.mutator_insns)

let test_gc_invariant w =
  Alcotest.test_case (w.Workloads.Workload.name ^ " GC-invariant") `Slow
    (fun () ->
      let v_nogc, _ = run w ~scale:2 in
      (* lred's trail grows for the whole run, so its semispace must be
         larger (that is the point of the workload, sec. 6). *)
      let semispace_bytes =
        if String.equal w.Workloads.Workload.name "lred" then 768 * 1024
        else 128 * 1024
      in
      let v_cheney, s =
        run ~gc:(Vscheme.Machine.Cheney { semispace_bytes }) w ~scale:2
      in
      Alcotest.(check string) "same result under Cheney" v_nogc v_cheney;
      Alcotest.(check bool) "collected" true (s.Vscheme.Machine.collections > 0);
      let v_gen, _ =
        run
          ~gc:
            (Vscheme.Machine.Generational
               { nursery_bytes = 64 * 1024; old_bytes = 8 * 1024 * 1024 })
          w ~scale:2
      in
      Alcotest.(check string) "same result under generational" v_nogc v_gen)

let test_scale_monotone w =
  Alcotest.test_case (w.Workloads.Workload.name ^ " scales") `Slow (fun () ->
      let _, s1 = run w ~scale:1 in
      let _, s2 = run w ~scale:3 in
      Alcotest.(check bool) "more work at higher scale" true
        (s2.Vscheme.Machine.mutator_insns > s1.Vscheme.Machine.mutator_insns))

(* Workload-specific result sanity. *)
let test_selfcomp_output () =
  let v, _ = run Workloads.Workload.selfcomp ~scale:1 in
  (* total instruction count across compiled units: a positive fixnum *)
  Alcotest.(check bool) "positive count" true (int_of_string v > 0)

let test_prover_refutes () =
  (* prover errors out if pigeonhole is not refuted, so completing is
     itself the check; the result counts saturation steps. *)
  let v, _ = run Workloads.Workload.prover ~scale:1 in
  Alcotest.(check bool) "steps counted" true (int_of_string v > 0)

let test_lred_structure () =
  let v, _ = run Workloads.Workload.lred ~scale:1 in
  (* (done total-steps trail-length typed-count) *)
  Alcotest.(check bool) "done marker" true
    (String.length v > 6 && String.sub v 1 4 = "done")

let test_nbody_energy () =
  let v, _ = run Workloads.Workload.nbody ~scale:1 in
  Alcotest.(check bool) "kinetic energy gained" true (int_of_string v > 0)

let test_mexpr_accepts () =
  let v, _ = run Workloads.Workload.mexpr ~scale:1 in
  Alcotest.(check bool) "done marker" true
    (String.length v > 6 && String.sub v 1 4 = "done")

let () =
  Alcotest.run "workloads"
    [ ("registry", [ Alcotest.test_case "registry" `Quick test_registry ]);
      ("runs", List.map test_runs Workloads.Workload.all);
      ("determinism", List.map test_deterministic Workloads.Workload.all);
      ("gc-invariance", List.map test_gc_invariant Workloads.Workload.all);
      ("scaling", List.map test_scale_monotone Workloads.Workload.all);
      ( "results",
        [ Alcotest.test_case "selfcomp output" `Quick test_selfcomp_output;
          Alcotest.test_case "prover refutes" `Quick test_prover_refutes;
          Alcotest.test_case "lred structure" `Quick test_lred_structure;
          Alcotest.test_case "nbody energy" `Quick test_nbody_energy;
          Alcotest.test_case "mexpr accepts" `Quick test_mexpr_accepts
        ] )
    ]
