(* End-to-end language tests: expander, compiler and VM, exercised
   through Machine.eval_string.  Each [ev] case compares the printed
   result value. *)

let machine () =
  Vscheme.Machine.create
    { Vscheme.Machine.default_config with heap_bytes = 8 * 1024 * 1024 }

let eval m src =
  Vscheme.Machine.value_to_string m (Vscheme.Machine.eval_string m src)

let ev_cases =
  [ (* self-evaluating and quote *)
    ("integer", "42", "42");
    ("negative", "-7", "-7");
    ("true", "#t", "#t");
    ("false", "#f", "#f");
    ("char", "#\\q", "#\\q");
    ("string", {|"abc"|}, {|"abc"|});
    ("real", "2.5", "2.5");
    ("quote symbol", "'abc", "abc");
    ("quote list", "'(1 2 3)", "(1 2 3)");
    ("quote nested", "'(a (b . c) #(1 2))", "(a (b . c) #(1 2))");
    ("quote empty", "'()", "()");
    (* arithmetic *)
    ("add", "(+ 1 2 3 4)", "10");
    ("add nothing", "(+)", "0");
    ("subtract", "(- 10 3 2)", "5");
    ("negate", "(- 5)", "-5");
    ("multiply", "(* 2 3 4)", "24");
    ("divide", "(/ 7 2)", "3.5");
    ("reciprocal", "(/ 4)", "0.25");
    ("quotient", "(quotient 17 5)", "3");
    ("remainder", "(remainder 17 5)", "2");
    ("remainder negative", "(remainder -7 2)", "-1");
    ("modulo", "(modulo -7 2)", "1");
    ("mixed float", "(+ 1 0.5)", "1.5");
    ("comparison chain", "(< 1 2 3)", "#t");
    ("comparison fail", "(< 1 3 2)", "#f");
    ("equals", "(= 2 2 2)", "#t");
    ("max", "(max 1 7 3)", "7");
    ("min float contagion", "(min 2 1.5)", "1.5");
    ("abs", "(abs -9)", "9");
    ("sqrt", "(sqrt 16)", "4.");
    ("even", "(even? 4)", "#t");
    ("odd", "(odd? 4)", "#f");
    ("zero", "(zero? 0)", "#t");
    ("ash left", "(ash 1 4)", "16");
    ("ash right", "(ash 16 -2)", "4");
    ("logand", "(logand 12 10)", "8");
    ("logor", "(logor 12 10)", "14");
    ("logxor", "(logxor 12 10)", "6");
    ("floor", "(floor 2.7)", "2.");
    ("exact->inexact", "(exact->inexact 3)", "3.");
    ("inexact->exact", "(inexact->exact 3.9)", "3");
    (* predicates and equality *)
    ("eq symbols", "(eq? 'a 'a)", "#t");
    ("eq lists", "(eq? (list 1) (list 1))", "#f");
    ("eqv floats", "(eqv? 1.5 1.5)", "#t");
    ("equal lists", "(equal? '(1 (2 3)) (list 1 (list 2 3)))", "#t");
    ("equal strings", {|(equal? "ab" (string-append "a" "b"))|}, "#t");
    ("equal vectors", "(equal? #(1 2) (vector 1 2))", "#t");
    ("equal differs", "(equal? '(1 2) '(1 3))", "#f");
    ("pair?", "(pair? '(1))", "#t");
    ("pair? nil", "(pair? '())", "#f");
    ("null?", "(null? '())", "#t");
    ("symbol?", "(symbol? 'x)", "#t");
    ("procedure?", "(procedure? (lambda (x) x))", "#t");
    ("procedure? prim", "(procedure? car)", "#t");
    ("not", "(not #f)", "#t");
    ("not value", "(not 3)", "#f");
    (* conditionals and derived forms *)
    ("if true", "(if #t 1 2)", "1");
    ("if false", "(if #f 1 2)", "2");
    ("if one-armed", "(if #f 1)", "#f");
    ("cond", "(cond ((= 1 2) 'a) ((= 1 1) 'b) (else 'c))", "b");
    ("cond else", "(cond (#f 1) (else 2))", "2");
    ("cond test-only", "(cond (#f) (7))", "7");
    ("cond arrow", "(cond ((assq 'b '((a 1) (b 2))) => cadr) (else 'no))", "2");
    ("case", "(case (* 2 3) ((2 3 5 7) 'prime) ((1 4 6 8 9) 'composite))", "composite");
    ("case else", "(case 'z ((a) 1) (else 2))", "2");
    ("and", "(and 1 2 3)", "3");
    ("and empty", "(and)", "#t");
    ("and short-circuit", "(and #f (error \"boom\"))", "#f");
    ("or", "(or #f 2 3)", "2");
    ("or empty", "(or)", "#f");
    ("when", "(when (= 1 1) 'yes)", "yes");
    ("when false", "(when (= 1 2) 'yes)", "#f");
    ("unless", "(unless (= 1 2) 'yes)", "yes");
    (* binding forms *)
    ("let", "(let ((x 1) (y 2)) (+ x y))", "3");
    ("let shadows", "(let ((x 1)) (let ((x 2)) x))", "2");
    ("let is parallel", "(let ((x 1)) (let ((x 2) (y x)) y))", "1");
    ("let*", "(let* ((x 1) (y (+ x 1))) y)", "2");
    ("letrec", "(letrec ((e? (lambda (n) (if (= n 0) #t (o? (- n 1))))) (o? (lambda (n) (if (= n 0) #f (e? (- n 1)))))) (e? 10))", "#t");
    ("named let", "(let loop ((i 0) (acc 1)) (if (= i 5) acc (loop (+ i 1) (* acc 2))))", "32");
    ("begin", "(begin 1 2 3)", "3");
    ("nested let in operand", "(+ (let ((a 1)) a) (let ((b 2)) b))", "3");
    ("let under if join", "(let ((a (if #t (let ((b 1)) b) 2)) (c 10)) (+ a c))", "11");
    (* lambdas and closures *)
    ("apply lambda", "((lambda (x y) (* x y)) 6 7)", "42");
    ("closure capture", "(define (adder n) (lambda (x) (+ x n))) ((adder 5) 10)", "15");
    ("closure shares cell",
     "(define (counter) (let ((n 0)) (lambda () (set! n (+ n 1)) n))) \
      (define c (counter)) (c) (c) (c)",
     "3");
    ("two counters independent",
     "(define (counter) (let ((n 0)) (lambda () (set! n (+ n 1)) n))) \
      (define a (counter)) (define b (counter)) (a) (a) (b)",
     "1");
    ("rest args", "((lambda args args) 1 2 3)", "(1 2 3)");
    ("rest after required", "((lambda (a . rest) (cons a rest)) 1 2 3)", "(1 2 3)");
    ("rest empty", "((lambda (a . rest) rest) 1)", "()");
    ("higher order", "(map (lambda (f) (f 3)) (list (lambda (x) (* x x)) (lambda (x) (- x))))", "(9 -3)");
    ("prim as value", "(map car '((1 2) (3 4)))", "(1 3)");
    ("deep capture",
     "(define (f a) (lambda (b) (lambda (c) (+ a b c)))) (((f 1) 2) 3)",
     "6");
    ("set! on captured parameter",
     "(define (f x) (lambda () (set! x (+ x 1)) x)) (define g (f 10)) (g) (g)",
     "12");
    (* recursion and tail calls *)
    ("factorial", "(define (fact n) (if (< n 2) 1 (* n (fact (- n 1))))) (fact 12)", "479001600");
    ("fib", "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 15)", "610");
    ("deep tail loop",
     "(let loop ((i 0)) (if (= i 1000000) 'done (loop (+ i 1))))",
     "done");
    ("mutual tail recursion",
     "(define (e? n) (if (= n 0) #t (o? (- n 1)))) \
      (define (o? n) (if (= n 0) #f (e? (- n 1)))) (e? 200000)",
     "#t");
    ("internal defines",
     "(define (f x) (define y (* x 2)) (define (g z) (+ z y)) (g 1)) (f 10)",
     "21");
    (* data structures *)
    ("cons", "(cons 1 2)", "(1 . 2)");
    ("list", "(list 1 'a \"b\")", "(1 a \"b\")");
    ("set-car!", "(define p (cons 1 2)) (set-car! p 9) p", "(9 . 2)");
    ("vectors", "(let ((v (make-vector 3 'x))) (vector-set! v 1 'y) (vector->list v))", "(x y x)");
    ("vector literal", "(vector-ref #(a b c) 1)", "b");
    ("list->vector", "(list->vector '(1 2))", "#(1 2)");
    ("vector-fill!", "(let ((v (make-vector 3 0))) (vector-fill! v 7) v)", "#(7 7 7)");
    ("memq", "(memq 'c '(a b c d))", "(c d)");
    ("memq miss", "(memq 'z '(a b))", "#f");
    ("memv", "(memv 2 '(1 2 3))", "(2 3)");
    ("assq", "(assq 'b '((a 1) (b 2)))", "(b 2)");
    ("assv", "(assv 2 '((1 a) (2 b)))", "(2 b)");
    (* strings, chars, symbols *)
    ("string-append", {|(string-append "foo" "" "bar")|}, {|"foobar"|});
    ("substring", {|(substring "hello" 1 3)|}, {|"el"|});
    ("string-length", {|(string-length "abc")|}, "3");
    ("string=?", {|(string=? "a" "a")|}, "#t");
    ("string<?", {|(string<? "abc" "abd")|}, "#t");
    ("symbol->string", "(symbol->string 'hey)", {|"hey"|});
    ("string->symbol", {|(eq? (string->symbol "hey") 'hey)|}, "#t");
    ("number->string", "(number->string 123)", {|"123"|});
    ("list->string", "(list->string '(#\\h #\\i))", {|"hi"|});
    ("char->integer", "(char->integer #\\a)", "97");
    ("integer->char", "(integer->char 65)", "#\\A");
    ("char-upcase", "(char-upcase #\\x)", "#\\X");
    ("char-alphabetic?", "(char-alphabetic? #\\5)", "#f");
    ("char-numeric?", "(char-numeric? #\\5)", "#t");
    ("gensym distinct", "(eq? (gensym) (gensym))", "#f");
    (* quasiquote *)
    ("qq simple", "`(1 2)", "(1 2)");
    ("qq unquote", "`(1 ,(+ 1 1))", "(1 2)");
    ("qq splicing", "`(0 ,@(list 1 2) 3)", "(0 1 2 3)");
    ("qq nested level", "`(a `(b ,(c)))", "(a (quasiquote (b (unquote (c)))))");
    ("qq vector", "`#(1 ,(+ 1 1))", "#(1 2)");
    ("qq dotted", "`(1 . ,(+ 1 1))", "(1 . 2)");
    (* prelude library *)
    ("length", "(length '(a b c))", "3");
    ("append", "(append '(1) '(2 3) '(4))", "(1 2 3 4)");
    ("append none", "(append)", "()");
    ("reverse", "(reverse '(1 2 3))", "(3 2 1)");
    ("map two lists", "(map + '(1 2) '(10 20))", "(11 22)");
    ("filter", "(filter even? '(1 2 3 4 5 6))", "(2 4 6)");
    ("fold-left", "(fold-left - 10 '(1 2 3))", "4");
    ("fold-right", "(fold-right cons '() '(1 2))", "(1 2)");
    ("assoc", {|(assoc "b" '(("a" 1) ("b" 2)))|}, {|("b" 2)|});
    ("member", "(member '(1) '((0) (1) (2)))", "((1) (2))");
    ("iota", "(iota 4)", "(0 1 2 3)");
    ("list-ref", "(list-ref '(a b c) 2)", "c");
    ("list-tail", "(list-tail '(a b c) 1)", "(b c)");
    ("sort", "(sort '(3 1 2) <)", "(1 2 3)");
    ("sort stable pairs", "(map car (sort '((2 a) (1 b) (2 c) (1 d)) (lambda (x y) (< (car x) (car y)))))", "(1 1 2 2)");
    ("any", "(any even? '(1 3 4))", "#t");
    ("every", "(every even? '(2 4 5))", "#f");
    ("delete-duplicates", "(delete-duplicates '(a b a c b))", "(a c b)");
    ("string->list", {|(string->list "ab")|}, "(#\\a #\\b)");
    ("vector-map", "(vector-map (lambda (x) (* x x)) #(1 2 3))", "#(1 4 9)");
    ("caar etc", "(caddr '(1 2 3))", "3");
    (* hash tables *)
    ("table basic",
     "(define t (make-table)) (table-set! t 'a 1) (table-ref t 'a)",
     "1");
    ("table default", "(table-ref (make-table) 'missing 'dflt)", "dflt");
    ("table overwrite",
     "(define t (make-table)) (table-set! t 'k 1) (table-set! t 'k 2) \
      (list (table-ref t 'k) (table-count t))",
     "(2 1)");
    ("table growth",
     "(define t (make-table 4)) \
      (for-each (lambda (i) (table-set! t i (* i i))) (iota 100)) \
      (list (table-count t) (table-ref t 77))",
     "(100 5929)");
    ("table->list count",
     "(define t (make-table)) (table-set! t 'x 1) (table-set! t 'y 2) \
      (length (table->list t))",
     "2");
    (* apply and do *)
    ("apply list", "(apply + '(1 2 3))", "6");
    ("apply extra args", "(apply + 1 2 '(3 4))", "10");
    ("apply empty list", "(apply + 5 '())", "5");
    ("apply lambda", "(apply (lambda (a b) (cons a b)) '(1 2))", "(1 . 2)");
    ("apply prim closure", "(apply max '(3 9 2))", "9");
    ("apply in tail position",
     "(define (f . xs) (if (null? xs) 'end (apply f (cdr xs)))) (f 1 2 3)",
     "end");
    ("apply first-class", "((lambda (ap) (ap + '(1 2))) apply)", "3");
    ("do loop", "(do ((i 0 (+ i 1)) (acc 1 (* acc 2))) ((= i 5) acc))", "32");
    ("do without step", "(do ((i 0 (+ i 1)) (x 'kept)) ((= i 3) x))", "kept");
    ("do with body",
     "(define n 0) (do ((i 0 (+ i 1))) ((= i 4) n) (set! n (+ n i)))",
     "6");
    ("do empty result", "(do ((i 0 (+ i 1))) ((= i 2)))", "#f");
    (* compiler stress: captures, branches, stack discipline *)
    ("capture let-bound under branch",
     "(define (f c) ((if c (let ((x 1)) (lambda () x)) (lambda () 0))))       (list (f #t) (f #f))",
     "(1 0)");
    ("two closures share a let cell",
     "(define (mk) (let ((n 0)) (cons (lambda () (set! n (+ n 1)) n) (lambda () n))))       (define p (mk)) ((car p)) ((car p)) ((cdr p))",
     "2");
    ("mutual internal defines with captures",
     "(define (f base)         (define (even2? n) (if (= n base) #t (odd2? (- n 1))))         (define (odd2? n) (if (= n base) #f (even2? (- n 1))))         (even2? (+ base 6)))       (f 3)",
     "#t");
    ("apply to rest-taking callee", "(apply (lambda args (length args)) 1 '(2 3 4))", "4");
    ("nested lets in both if arms",
     "(define (g c) (+ (if c (let ((a 1) (b 2)) (+ a b)) (let ((z 9)) z)) 100))       (list (g #t) (g #f))",
     "(103 109)");
    ("let body result over many bindings",
     "(let ((a 1) (b 2) (c 3) (d 4) (e 5)) (let ((f 6)) (+ a b c d e f)))",
     "21");
    ("deep non-tail recursion under captures",
     "(define (build d) (if (= d 0) (lambda () 1) (let ((k (build (- d 1)))) (lambda () (+ 1 (k))))))       ((build 100))",
     "101");
    (* misc *)
    ("random deterministic bound", "(< (random 10) 10)", "#t");
    ("eof-object?", "(eof-object? 5)", "#f");
    ("define returns value later", "(define x 5) (define y (* x 2)) y", "10");
    ("set! global", "(define x 1) (set! x 99) x", "99");
    ("runtime-collections", "(runtime-collections)", "0")
  ]

let test_eval (name, src, expected) =
  Alcotest.test_case name `Quick (fun () ->
      let m = machine () in
      Alcotest.(check string) name expected (eval m src))

(* --- Error behaviour -------------------------------------------------- *)

let expect_runtime_error src =
  let m = machine () in
  match eval m src with
  | exception Vscheme.Heap.Runtime_error _ -> ()
  | v -> Alcotest.fail (Printf.sprintf "expected runtime error, got %s" v)

let expect_compile_error src =
  let m = machine () in
  match eval m src with
  | exception Vscheme.Compiler.Compile_error _ -> ()
  | v -> Alcotest.fail (Printf.sprintf "expected compile error, got %s" v)

let expect_syntax_error src =
  let m = machine () in
  match eval m src with
  | exception Vscheme.Expander.Syntax_error _ -> ()
  | v -> Alcotest.fail (Printf.sprintf "expected syntax error, got %s" v)

let test_apply_errors () =
  expect_runtime_error "(apply + 1)";
  expect_runtime_error "(apply + '(1 . 2))";
  expect_runtime_error "(apply 5 '(1 2))"

let test_runtime_errors () =
  expect_runtime_error "(car 5)";
  expect_runtime_error "(car '())";
  expect_runtime_error "(vector-ref (vector 1) 2)";
  expect_runtime_error "(undefined-variable)";
  expect_runtime_error "(quotient 1 0)";
  expect_runtime_error "((lambda (x) x) 1 2)";
  expect_runtime_error "((lambda (x y) x) 1)";
  expect_runtime_error "(5 6)";
  expect_runtime_error "(error \"deliberate\" 1 2)";
  expect_runtime_error "(+ 'a 1)";
  expect_runtime_error "(string-ref \"ab\" 2)";
  expect_runtime_error "(letrec ((x (+ x 1))) x)";
  expect_runtime_error "(define (f) (table-ref (make-table) 'k)) (f)"

let test_compile_errors () =
  expect_compile_error "(car 1 2)";
  expect_compile_error "(cons 1)";
  expect_compile_error "(lambda (x x) x)"

let test_syntax_errors () =
  expect_syntax_error "(if)";
  expect_syntax_error "(set! 5 1)";
  expect_syntax_error "(lambda)";
  expect_syntax_error "(let ((x)) x)";
  expect_syntax_error "(define)";
  expect_syntax_error "(unquote 1)";
  expect_syntax_error "()"

let test_shadowing_primitives () =
  (* A lexical binding of a primitive name must win. *)
  let m = machine () in
  Alcotest.(check string) "shadowed car" "42"
    (eval m "(let ((car (lambda (x) 42))) (car '(1 2)))")

let test_stack_overflow () =
  let m = machine () in
  match eval m "(define (f n) (+ 1 (f (+ n 1)))) (f 0)" with
  | exception Vscheme.Heap.Runtime_error msg ->
    Alcotest.(check bool) "mentions stack" true
      (String.length msg >= 5)
  | v -> Alcotest.fail ("expected stack overflow, got " ^ v)

let test_instruction_limit () =
  let m = machine () in
  Vscheme.Machine.set_instruction_limit m (Some 100000);
  match eval m "(let loop () (loop))" with
  | exception Vscheme.Vm.Instruction_limit_exceeded -> ()
  | v -> Alcotest.fail ("expected limit, got " ^ v)

let test_output () =
  let m = machine () in
  ignore (Vscheme.Machine.eval_string m {|(display "x=") (display 42) (newline) (write "s")|});
  Alcotest.(check string) "output buffer" "x=42\n\"s\"" (Vscheme.Machine.output m);
  Vscheme.Machine.clear_output m;
  Alcotest.(check string) "cleared" "" (Vscheme.Machine.output m)

let test_disassemble () =
  let m = machine () in
  ignore (Vscheme.Machine.eval_string m "(define (f x) (+ x 1))");
  let vm = Vscheme.Machine.vm m in
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  for i = 0 to Vscheme.Vm.code_count vm - 1 do
    Vscheme.Bytecode.disassemble ppf (Vscheme.Vm.code vm i)
  done;
  Format.pp_print_flush ppf ();
  Alcotest.(check bool) "disassembly nonempty" true (Buffer.length buf > 100)

(* Determinism: the same program produces identical instruction counts
   and results across machines. *)
let test_determinism () =
  let run () =
    let m = machine () in
    let v = eval m "(define (go n) (if (= n 0) '() (cons (random 100) (go (- n 1))))) (go 20)" in
    (v, (Vscheme.Machine.stats m).Vscheme.Machine.mutator_insns)
  in
  let v1, i1 = run () in
  let v2, i2 = run () in
  Alcotest.(check string) "same value" v1 v2;
  Alcotest.(check int) "same instruction count" i1 i2

(* Property: compiled arithmetic agrees with OCaml on fixnums. *)
let arith_prop =
  QCheck.Test.make ~count:200 ~name:"compiled arithmetic agrees with host"
    QCheck.(pair (int_range (-10000) 10000) (int_range (-10000) 10000))
    (fun (a, b) ->
      let m = machine () in
      let src = Printf.sprintf "(list (+ %d %d) (- %d %d) (* %d %d))" a b a b a b in
      eval m src = Printf.sprintf "(%d %d %d)" (a + b) (a - b) (a * b))

(* Property: apply is extensionally a call. *)
let apply_prop =
  QCheck.Test.make ~count:50 ~name:"apply spreads like a direct call"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 8) (int_range 0 999))
    (fun xs ->
      let m = machine () in
      let lit = String.concat " " (List.map string_of_int xs) in
      eval m (Printf.sprintf "(apply list 0 '(%s))" lit)
      = eval m (Printf.sprintf "(list 0 %s)" lit))

(* Property: (reverse (reverse l)) = l through the whole pipeline. *)
let reverse_prop =
  QCheck.Test.make ~count:50 ~name:"reverse involution in vscheme"
    QCheck.(list_of_size (QCheck.Gen.int_bound 20) (int_range 0 999))
    (fun xs ->
      let m = machine () in
      let lit = "(" ^ String.concat " " (List.map string_of_int xs) ^ ")" in
      eval m (Printf.sprintf "(reverse (reverse '%s))" lit) = lit
      || (xs = [] && eval m "(reverse (reverse '()))" = "()"))

let () =
  Alcotest.run "lang"
    [ ("eval", List.map test_eval ev_cases);
      ( "errors",
        [ Alcotest.test_case "runtime errors" `Quick test_runtime_errors;
          Alcotest.test_case "apply errors" `Quick test_apply_errors;
          Alcotest.test_case "compile errors" `Quick test_compile_errors;
          Alcotest.test_case "syntax errors" `Quick test_syntax_errors;
          Alcotest.test_case "shadowing primitives" `Quick test_shadowing_primitives;
          Alcotest.test_case "stack overflow" `Quick test_stack_overflow;
          Alcotest.test_case "instruction limit" `Quick test_instruction_limit
        ] );
      ( "machine",
        [ Alcotest.test_case "output buffer" `Quick test_output;
          Alcotest.test_case "disassembler" `Quick test_disassemble;
          Alcotest.test_case "determinism" `Quick test_determinism
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest arith_prop;
          QCheck_alcotest.to_alcotest apply_prop;
          QCheck_alcotest.to_alcotest reverse_prop
        ] )
    ]
