(* Small adapter so the CLI can run a workload with one cache
   attached. *)

let run ~gc ~cache ?scale w =
  Core.Runner.run ~gc ?scale ~sinks:[ Memsim.Cache.sink cache ] w
