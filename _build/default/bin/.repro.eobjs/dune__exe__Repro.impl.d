bin/repro.ml: Arg Cmd Cmdliner Core Format List Memsim Printf Runner_facade Sexp String Term Vscheme Workloads
