bin/runner_facade.ml: Core Memsim
