bin/repro.mli:
