(* The repro command-line tool: run the paper's experiments, execute
   Scheme programs on the vscheme machine, and do ad-hoc cache
   simulations of workloads. *)

let ppf = Format.std_formatter

(* --- Shared argument conversions ------------------------------------- *)

let size_conv =
  let parse s =
    let mult, body =
      let n = String.length s in
      if n = 0 then (1, s)
      else
        match s.[n - 1] with
        | 'k' | 'K' -> (1024, String.sub s 0 (n - 1))
        | 'm' | 'M' -> (1024 * 1024, String.sub s 0 (n - 1))
        | '0' .. '9' -> (1, s)
        | _ -> (0, s)
    in
    match int_of_string_opt body with
    | Some n when mult > 0 && n > 0 -> Ok (n * mult)
    | Some _ | None -> Error (`Msg (Printf.sprintf "bad size %S (try 64k, 2m)" s))
  in
  let print fmt n = Format.fprintf fmt "%a" Memsim.Sweep.pp_size n in
  Cmdliner.Arg.conv (parse, print)

let gc_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "none" ] -> Ok Vscheme.Machine.No_gc
    | [ "cheney"; semi ] -> (
      match Cmdliner.Arg.conv_parser size_conv semi with
      | Ok semispace_bytes -> Ok (Vscheme.Machine.Cheney { semispace_bytes })
      | Error _ as e -> e)
    | [ "marksweep"; nursery; old ] | [ "ms"; nursery; old ] -> (
      match
        ( Cmdliner.Arg.conv_parser size_conv nursery,
          Cmdliner.Arg.conv_parser size_conv old )
      with
      | Ok nursery_bytes, Ok old_bytes ->
        Ok (Vscheme.Machine.Mark_sweep { nursery_bytes; old_bytes })
      | (Error _ as e), _ | _, (Error _ as e) -> e)
    | [ "gen"; nursery; old ] -> (
      match
        ( Cmdliner.Arg.conv_parser size_conv nursery,
          Cmdliner.Arg.conv_parser size_conv old )
      with
      | Ok nursery_bytes, Ok old_bytes ->
        Ok (Vscheme.Machine.Generational { nursery_bytes; old_bytes })
      | (Error _ as e), _ | _, (Error _ as e) -> e)
    | _ ->
      Error
        (`Msg
          (Printf.sprintf
             "bad collector %S (none | cheney:SIZE | gen:NURSERY:OLD | \
              marksweep:NURSERY:OLD)" s))
  in
  let print fmt gc =
    match (gc : Vscheme.Machine.gc_spec) with
    | Vscheme.Machine.No_gc -> Format.pp_print_string fmt "none"
    | Vscheme.Machine.Cheney { semispace_bytes } ->
      Format.fprintf fmt "cheney:%a" Memsim.Sweep.pp_size semispace_bytes
    | Vscheme.Machine.Generational { nursery_bytes; old_bytes } ->
      Format.fprintf fmt "gen:%a:%a" Memsim.Sweep.pp_size nursery_bytes
        Memsim.Sweep.pp_size old_bytes
    | Vscheme.Machine.Mark_sweep { nursery_bytes; old_bytes } ->
      Format.fprintf fmt "marksweep:%a:%a" Memsim.Sweep.pp_size nursery_bytes
        Memsim.Sweep.pp_size old_bytes
  in
  Cmdliner.Arg.conv (parse, print)

(* --- experiments ------------------------------------------------------ *)

let list_experiments () =
  Core.Report.table ppf
    ~headers:[ "id"; "paper artifact"; "title" ]
    ~rows:
      (List.map
         (fun e ->
           [ e.Core.Experiments.id; e.Core.Experiments.paper_artifact;
             e.Core.Experiments.title ])
         Core.Experiments.all);
  0

let run_experiments ids =
  match ids with
  | [] ->
    Core.Experiments.run_all ppf;
    0
  | ids ->
    let missing = List.filter (fun id -> Core.Experiments.find id = None) ids in
    if missing <> [] then begin
      Format.eprintf "unknown experiment(s): %s@." (String.concat ", " missing);
      1
    end
    else begin
      List.iter
        (fun id ->
          match Core.Experiments.find id with
          | Some e ->
            Format.fprintf ppf "@.==== E-%s: %s [%s] ====@."
              e.Core.Experiments.id e.Core.Experiments.title
              e.Core.Experiments.paper_artifact;
            e.Core.Experiments.run ppf
          | None -> assert false)
        ids;
      0
    end

(* --- scheme ------------------------------------------------------------ *)

let run_scheme file expr gc heap_bytes show_stats =
  let source =
    match file, expr with
    | Some path, None ->
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Some s
    | None, Some e -> Some e
    | None, None -> None
    | Some _, Some _ -> None
  in
  match source with
  | None ->
    Format.eprintf "scheme: give exactly one of FILE or -e EXPR@.";
    1
  | Some source -> (
    let m =
      Vscheme.Machine.create
        { Vscheme.Machine.default_config with gc; heap_bytes }
    in
    match Vscheme.Machine.eval_string m source with
    | v ->
      let out = Vscheme.Machine.output m in
      if out <> "" then Format.fprintf ppf "%s" out;
      Format.fprintf ppf "%s@." (Vscheme.Machine.value_to_string m v);
      if show_stats then begin
        let s = Vscheme.Machine.stats m in
        Format.fprintf ppf
          "; %d instructions, %d collector instructions, %d collections, %s \
           allocated@."
          s.Vscheme.Machine.mutator_insns s.Vscheme.Machine.collector_insns
          s.Vscheme.Machine.collections
          (Core.Report.mb s.Vscheme.Machine.bytes_allocated)
      end;
      0
    | exception Vscheme.Heap.Runtime_error msg ->
      Format.eprintf "runtime error: %s@." msg;
      1
    | exception Vscheme.Compiler.Compile_error msg ->
      Format.eprintf "compile error: %s@." msg;
      1
    | exception Vscheme.Expander.Syntax_error msg ->
      Format.eprintf "syntax error: %s@." msg;
      1
    | exception Sexp.Parser.Error (msg, pos) ->
      Format.eprintf "parse error at line %d: %s@." pos.Sexp.Lexer.line msg;
      1
    | exception Vscheme.Heap.Out_of_memory msg ->
      Format.eprintf "out of memory: %s@." msg;
      1)

(* --- workloads ---------------------------------------------------------- *)

let list_workloads () =
  Core.Report.table ppf
    ~headers:[ "name"; "paper analogue"; "lines" ]
    ~rows:
      (List.map
         (fun w ->
           [ w.Workloads.Workload.name;
             w.Workloads.Workload.paper_analogue;
             string_of_int (Workloads.Workload.source_lines w)
           ])
         Workloads.Workload.all);
  0

let simulate name cache_bytes block_bytes policy gc scale =
  match Workloads.Workload.find name with
  | None ->
    Format.eprintf "unknown workload %S (try `repro workloads')@." name;
    1
  | Some w ->
    let cache =
      Memsim.Cache.create
        (Memsim.Cache.config ~write_miss_policy:policy ~size_bytes:cache_bytes
           ~block_bytes ())
    in
    let r = Runner_facade.run ~gc ~cache ?scale w in
    let s = Memsim.Cache.stats cache in
    let insns = r.Core.Runner.stats.Vscheme.Machine.mutator_insns in
    Core.Report.table ppf ~headers:[ "metric"; "value" ]
      ~rows:
        [ [ "workload"; w.Workloads.Workload.name ];
          [ "scale"; string_of_int r.Core.Runner.scale ];
          [ "result"; r.Core.Runner.value ];
          [ "instructions"; Core.Report.eng insns ];
          [ "references"; Core.Report.eng r.Core.Runner.refs ];
          [ "allocated";
            Core.Report.mb r.Core.Runner.stats.Vscheme.Machine.bytes_allocated
          ];
          [ "collections";
            string_of_int r.Core.Runner.stats.Vscheme.Machine.collections ];
          [ "misses"; Core.Report.eng s.Memsim.Cache.misses ];
          [ "alloc misses"; Core.Report.eng s.Memsim.Cache.alloc_misses ];
          [ "fetches"; Core.Report.eng s.Memsim.Cache.fetches ];
          [ "miss ratio";
            Format.sprintf "%.4f"
              (float_of_int s.Memsim.Cache.misses
               /. float_of_int (max 1 s.Memsim.Cache.refs))
          ];
          [ "O_cache slow";
            Core.Report.pct
              (Memsim.Timing.cache_overhead Memsim.Timing.Slow ~block_bytes
                 ~fetches:s.Memsim.Cache.fetches ~instructions:insns)
          ];
          [ "O_cache fast";
            Core.Report.pct
              (Memsim.Timing.cache_overhead Memsim.Timing.Fast ~block_bytes
                 ~fetches:s.Memsim.Cache.fetches ~instructions:insns)
          ]
        ];
    0

(* --- record / replay ----------------------------------------------------- *)

let record name out_path scale =
  match Workloads.Workload.find name with
  | None ->
    Format.eprintf "unknown workload %S (try `repro workloads')@." name;
    1
  | Some w ->
    let recording = Memsim.Recording.create ~initial_capacity:(1 lsl 20) () in
    let r =
      Core.Runner.run ?scale ~sinks:[ Memsim.Recording.sink recording ] w
    in
    Memsim.Recording.save recording out_path;
    Format.fprintf ppf "recorded %d references of %s (scale %d) to %s@."
      (Memsim.Recording.length recording)
      w.Workloads.Workload.name r.Core.Runner.scale out_path;
    0

let replay path cache_bytes block_bytes policy =
  match Memsim.Recording.load path with
  | exception Sys_error msg | exception Failure msg ->
    Format.eprintf "replay: %s@." msg;
    1
  | recording ->
    let cache =
      Memsim.Cache.create
        (Memsim.Cache.config ~write_miss_policy:policy ~size_bytes:cache_bytes
           ~block_bytes ())
    in
    Memsim.Recording.replay recording (Memsim.Cache.sink cache);
    let s = Memsim.Cache.stats cache in
    Core.Report.table ppf ~headers:[ "metric"; "value" ]
      ~rows:
        [ [ "events"; Core.Report.eng (Memsim.Recording.length recording) ];
          [ "mutator refs"; Core.Report.eng s.Memsim.Cache.refs ];
          [ "collector refs"; Core.Report.eng s.Memsim.Cache.collector_refs ];
          [ "misses"; Core.Report.eng s.Memsim.Cache.misses ];
          [ "fetches"; Core.Report.eng s.Memsim.Cache.fetches ];
          [ "miss ratio";
            Format.sprintf "%.4f"
              (float_of_int s.Memsim.Cache.misses
               /. float_of_int (max 1 s.Memsim.Cache.refs))
          ]
        ];
    0

(* --- Command definitions ------------------------------------------------ *)

open Cmdliner

let experiments_cmd =
  Cmd.v (Cmd.info "experiments" ~doc:"List the paper's experiments")
    Term.(const list_experiments $ const ())

let run_cmd =
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (default: all)")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run experiments and print their tables/figures (REPRO_SCALE \
             lengthens the runs)")
    Term.(const run_experiments $ ids)

let scheme_cmd =
  let file =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Scheme source file")
  in
  let expr =
    Arg.(value & opt (some string) None & info [ "e"; "expr" ] ~docv:"EXPR" ~doc:"Evaluate $(docv) instead of a file")
  in
  let gc =
    Arg.(value & opt gc_conv Vscheme.Machine.No_gc
         & info [ "gc" ] ~docv:"GC" ~doc:"Collector: none, cheney:SIZE, gen:NURSERY:OLD")
  in
  let heap =
    Arg.(value & opt size_conv (64 * 1024 * 1024)
         & info [ "heap" ] ~docv:"SIZE" ~doc:"Dynamic-area capacity for --gc none")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print run statistics after the result")
  in
  Cmd.v
    (Cmd.info "scheme" ~doc:"Run a Scheme program on the vscheme machine")
    Term.(const run_scheme $ file $ expr $ gc $ heap $ stats)

let workloads_cmd =
  Cmd.v (Cmd.info "workloads" ~doc:"List the five test-program workloads")
    Term.(const list_workloads $ const ())

let policy_conv =
  Arg.enum
    [ ("write-validate", Memsim.Cache.Write_validate);
      ("fetch-on-write", Memsim.Cache.Fetch_on_write)
    ]

let simulate_cmd =
  let workload_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD" ~doc:"Workload name")
  in
  let cache =
    Arg.(value & opt size_conv (64 * 1024) & info [ "cache" ] ~docv:"SIZE" ~doc:"Cache size")
  in
  let block =
    Arg.(value & opt int 64 & info [ "block" ] ~docv:"BYTES" ~doc:"Block size")
  in
  let policy =
    Arg.(value & opt policy_conv Memsim.Cache.Write_validate
         & info [ "policy" ] ~docv:"POLICY" ~doc:"Write-miss policy")
  in
  let gc =
    Arg.(value & opt gc_conv Vscheme.Machine.No_gc & info [ "gc" ] ~docv:"GC" ~doc:"Collector")
  in
  let scale =
    Arg.(value & opt (some int) None & info [ "scale" ] ~docv:"N" ~doc:"Workload scale")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run one workload through one cache configuration")
    Term.(const simulate $ workload_arg $ cache $ block $ policy $ gc $ scale)

let record_cmd =
  let workload_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD" ~doc:"Workload name")
  in
  let out =
    Arg.(value & opt string "trace.bin" & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output trace file")
  in
  let scale =
    Arg.(value & opt (some int) None & info [ "scale" ] ~docv:"N" ~doc:"Workload scale")
  in
  Cmd.v
    (Cmd.info "record" ~doc:"Record a workload's reference trace to a file")
    Term.(const record $ workload_arg $ out $ scale)

let replay_cmd =
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Trace file from `repro record'")
  in
  let cache =
    Arg.(value & opt size_conv (64 * 1024) & info [ "cache" ] ~docv:"SIZE" ~doc:"Cache size")
  in
  let block =
    Arg.(value & opt int 64 & info [ "block" ] ~docv:"BYTES" ~doc:"Block size")
  in
  let policy =
    Arg.(value & opt policy_conv Memsim.Cache.Write_validate
         & info [ "policy" ] ~docv:"POLICY" ~doc:"Write-miss policy")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Replay a recorded trace through a cache configuration")
    Term.(const replay $ path $ cache $ block $ policy)

let main =
  Cmd.group
    (Cmd.info "repro" ~version:"1.0.0"
       ~doc:"Cache Performance of Garbage-Collected Programs (PLDI 1994), \
             reproduced")
    [ experiments_cmd; run_cmd; scheme_cmd; workloads_cmd; simulate_cmd;
      record_cmd; replay_cmd ]

let () = exit (Cmd.eval' main)
