(* Quickstart: simulate a direct-mapped cache by hand, then attach one
   to a whole Scheme system and measure a small program, reproducing
   the paper's O_cache metric on it.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. A cache is a trace consumer.  Drive it with a synthetic
     trace: a linear allocation sweep, exactly the paper's "wave". *)
  let cache =
    Memsim.Cache.create
      (Memsim.Cache.config ~size_bytes:(32 * 1024) ~block_bytes:64 ())
  in
  for i = 0 to 99_999 do
    (* initializing store to consecutive words *)
    Memsim.Cache.access cache (i * 4) Memsim.Trace.Alloc_write
      Memsim.Trace.Mutator
  done;
  let s = Memsim.Cache.stats cache in
  Printf.printf
    "synthetic allocation sweep: %d refs, %d allocation misses, %d fetches\n"
    s.Memsim.Cache.refs s.Memsim.Cache.alloc_misses s.Memsim.Cache.fetches;
  Printf.printf
    "  (write-validate makes the sweep free: misses without fetches)\n\n";

  (* 2. Now a whole Scheme system wired to a cache. *)
  let cache =
    Memsim.Cache.create
      (Memsim.Cache.config ~size_bytes:(64 * 1024) ~block_bytes:64 ())
  in
  let machine =
    Vscheme.Machine.create
      { Vscheme.Machine.default_config with
        sink = Memsim.Cache.sink cache;
        heap_bytes = 16 * 1024 * 1024
      }
  in
  let value =
    Vscheme.Machine.eval_string machine
      {|
        (define (tree-insert t k)
          (cond ((null? t) (list k '() '()))
                ((< k (car t)) (list (car t) (tree-insert (cadr t) k) (caddr t)))
                (else (list (car t) (cadr t) (tree-insert (caddr t) k)))))
        (define (tree-size t) (if (null? t) 0 (+ 1 (tree-size (cadr t)) (tree-size (caddr t)))))
        (let loop ((i 0) (t '()))
          (if (= i 2000)
              (tree-size t)
              (loop (+ i 1) (tree-insert t (random 10000)))))
      |}
  in
  Printf.printf "Scheme program result: %s\n"
    (Vscheme.Machine.value_to_string machine value);
  let run = Vscheme.Machine.stats machine in
  let s = Memsim.Cache.stats cache in
  Printf.printf "instructions: %d   data references: %d   allocated: %d bytes\n"
    run.Vscheme.Machine.mutator_insns s.Memsim.Cache.refs
    run.Vscheme.Machine.bytes_allocated;

  (* 3. The paper's temporal metric: O_cache = fetches x penalty /
     instructions, for both hypothetical processors. *)
  List.iter
    (fun cpu ->
      Printf.printf "O_cache on the %s processor: %.2f%%\n"
        (Format.asprintf "%a" Memsim.Timing.pp_processor cpu)
        (100.0
         *. Memsim.Timing.cache_overhead cpu ~block_bytes:64
              ~fetches:s.Memsim.Cache.fetches
              ~instructions:run.Vscheme.Machine.mutator_insns))
    Memsim.Timing.all_processors
