examples/scheme_repl.ml: Core Printf Sexp Vscheme
