examples/quickstart.ml: Format List Memsim Printf Vscheme
