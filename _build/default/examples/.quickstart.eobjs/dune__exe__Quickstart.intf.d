examples/quickstart.mli:
