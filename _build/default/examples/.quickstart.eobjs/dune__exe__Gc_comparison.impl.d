examples/gc_comparison.ml: Core Format List Memsim Printf String Sys Vscheme Workloads
