examples/cache_explorer.ml: Analysis Core Format List Memsim Printf Sys Vscheme Workloads
