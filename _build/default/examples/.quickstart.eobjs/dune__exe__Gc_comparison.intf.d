examples/gc_comparison.mli:
