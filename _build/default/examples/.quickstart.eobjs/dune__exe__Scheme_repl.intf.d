examples/scheme_repl.mli:
