(* Compare collectors on one workload: the §6 experiment in miniature.
   Runs the compiler workload with no GC (baseline), a Cheney semispace
   collector, an infrequent generational collector, and an "aggressive"
   cache-sized-nursery generational collector, and prints O_gc for
   each.

   Run with:  dune exec examples/gc_comparison.exe [workload] *)

let block_bytes = 64
let cache_bytes = 64 * 1024

let measure gc w =
  let cache =
    Memsim.Cache.create
      (Memsim.Cache.config ~size_bytes:cache_bytes ~block_bytes ())
  in
  let r = Core.Runner.run ~gc ~sinks:[ Memsim.Cache.sink cache ] w in
  (r, Memsim.Cache.stats cache)

let () =
  let w =
    match Sys.argv with
    | [| _; name |] -> (
      match Workloads.Workload.find name with
      | Some w -> w
      | None ->
        prerr_endline ("unknown workload " ^ name);
        exit 1)
    | _ -> Workloads.Workload.selfcomp
  in
  Printf.printf "workload: %s (%s)\n\n" w.Workloads.Workload.name
    w.Workloads.Workload.paper_analogue;
  let baseline, base_stats = measure Vscheme.Machine.No_gc w in
  let base_insns = baseline.Core.Runner.stats.Vscheme.Machine.mutator_insns in
  Printf.printf "baseline (no GC): %d instructions, %s allocated, result %s\n\n"
    base_insns
    (Core.Report.mb baseline.Core.Runner.stats.Vscheme.Machine.bytes_allocated)
    baseline.Core.Runner.value;
  let alloc = baseline.Core.Runner.stats.Vscheme.Machine.bytes_allocated in
  let configs =
    [ ( "cheney (infrequent)",
        Vscheme.Machine.Cheney { semispace_bytes = max (512 * 1024) (alloc / 8) } );
      ( "generational (infrequent)",
        Vscheme.Machine.Generational
          { nursery_bytes = max (512 * 1024) (alloc / 8);
            old_bytes = 16 * 1024 * 1024
          } );
      ( "generational (aggressive)",
        Vscheme.Machine.Generational
          { nursery_bytes = 32 * 1024; old_bytes = 16 * 1024 * 1024 } )
    ]
  in
  Core.Report.table Format.std_formatter
    ~headers:
      [ "collector"; "collections"; "I_gc"; "O_gc slow @64k"; "O_gc fast @64k" ]
    ~rows:
      (List.map
         (fun (name, gc) ->
           let r, stats = measure gc w in
           if not (String.equal r.Core.Runner.value baseline.Core.Runner.value)
           then failwith "collector changed the program's result!";
           let o cpu =
             Memsim.Timing.gc_overhead cpu ~block_bytes
               ~collector_fetches:stats.Memsim.Cache.collector_fetches
               ~program_fetch_delta:
                 (stats.Memsim.Cache.fetches - base_stats.Memsim.Cache.fetches)
               ~collector_instructions:
                 r.Core.Runner.stats.Vscheme.Machine.collector_insns
               ~program_instruction_delta:
                 (r.Core.Runner.stats.Vscheme.Machine.mutator_insns - base_insns)
               ~program_instructions:base_insns
           in
           [ name;
             string_of_int r.Core.Runner.stats.Vscheme.Machine.collections;
             Core.Report.eng r.Core.Runner.stats.Vscheme.Machine.collector_insns;
             Core.Report.pct (o Memsim.Timing.Slow);
             Core.Report.pct (o Memsim.Timing.Fast)
           ])
         configs);
  print_newline ();
  print_endline
    "The paper's claim: an infrequently-run generational collector keeps O_gc";
  print_endline
    "small; shrinking the nursery to cache size multiplies collections without";
  print_endline "buying enough cache improvement to pay for itself (sec. 6)."
