(* An interactive vscheme read-eval-print loop.  Every form you type
   runs on the simulated machine; `,stats` shows the run counters.

   Run with:  dune exec examples/scheme_repl.exe *)

let () =
  let machine =
    Vscheme.Machine.create
      { Vscheme.Machine.default_config with
        gc = Vscheme.Machine.Generational
            { nursery_bytes = 512 * 1024; old_bytes = 16 * 1024 * 1024 }
      }
  in
  print_endline "vscheme repl (generational collector; ,stats ,quit)";
  let rec loop () =
    print_string "> ";
    match read_line () with
    | exception End_of_file -> ()
    | ",quit" | ",q" -> ()
    | ",stats" ->
      let s = Vscheme.Machine.stats machine in
      Printf.printf
        "%d instructions, %d collector instructions, %d collections, %s \
         allocated\n"
        s.Vscheme.Machine.mutator_insns s.Vscheme.Machine.collector_insns
        s.Vscheme.Machine.collections
        (Core.Report.mb s.Vscheme.Machine.bytes_allocated);
      loop ()
    | "" -> loop ()
    | line ->
      (match Vscheme.Machine.eval_string machine line with
       | v ->
         let out = Vscheme.Machine.output machine in
         Vscheme.Machine.clear_output machine;
         if out <> "" then print_string out;
         print_endline (Vscheme.Machine.value_to_string machine v)
       | exception Vscheme.Heap.Runtime_error msg ->
         Printf.printf "runtime error: %s\n" msg
       | exception Vscheme.Compiler.Compile_error msg ->
         Printf.printf "compile error: %s\n" msg
       | exception Vscheme.Expander.Syntax_error msg ->
         Printf.printf "syntax error: %s\n" msg
       | exception Sexp.Parser.Error (msg, _) ->
         Printf.printf "parse error: %s\n" msg);
      loop ()
  in
  loop ()
