(* Explore the cache design space for one workload: a miniature of the
   §5 control experiment, plus the §7 sweep plot, from one program run.

   Run with:  dune exec examples/cache_explorer.exe [workload] *)

let () =
  let w =
    match Sys.argv with
    | [| _; name |] -> (
      match Workloads.Workload.find name with
      | Some w -> w
      | None ->
        prerr_endline ("unknown workload " ^ name);
        exit 1)
    | _ -> Workloads.Workload.mexpr
  in
  let cache_sizes = [ 32 * 1024; 64 * 1024; 256 * 1024; 1024 * 1024 ] in
  let block_sizes = [ 16; 64; 256 ] in
  let sweep =
    Memsim.Sweep.create (Memsim.Sweep.grid ~cache_sizes ~block_sizes ())
  in
  (* One run feeds every cache in the grid plus the sweep plot. *)
  let plot_cache =
    Memsim.Cache.create
      (Memsim.Cache.config ~size_bytes:(64 * 1024) ~block_bytes:64 ())
  in
  let plot =
    Analysis.Miss_plot.create ~cache:plot_cache ~rows:24 ~refs_per_col:131072 ()
  in
  let r =
    Core.Runner.run
      ~sinks:[ Memsim.Sweep.sink sweep; Analysis.Miss_plot.sink plot ]
      w
  in
  let insns = r.Core.Runner.stats.Vscheme.Machine.mutator_insns in
  Printf.printf "workload %s: %d instructions, %d references\n\n"
    w.Workloads.Workload.name insns r.Core.Runner.refs;
  Core.Report.table Format.std_formatter
    ~headers:[ "cache"; "block"; "miss ratio"; "O_cache slow"; "O_cache fast" ]
    ~rows:
      (List.map
         (fun (cfg, stats) ->
           let ratio =
             float_of_int stats.Memsim.Cache.misses
             /. float_of_int (max 1 stats.Memsim.Cache.refs)
           in
           let block_bytes = cfg.Memsim.Cache.block_bytes in
           let o cpu =
             Memsim.Timing.cache_overhead cpu ~block_bytes
               ~fetches:stats.Memsim.Cache.fetches ~instructions:insns
           in
           [ Core.Report.size_label cfg.Memsim.Cache.size_bytes;
             string_of_int block_bytes ^ "b";
             Format.sprintf "%.4f" ratio;
             Core.Report.pct (o Memsim.Timing.Slow);
             Core.Report.pct (o Memsim.Timing.Fast)
           ])
         (Memsim.Sweep.results sweep));
  print_newline ();
  Analysis.Miss_plot.render Format.std_formatter plot
