(* Differential tests for the trace fast path and record-while-sweep.

   For every workload, the direct writer (Mem.record_into) must
   produce a recording bit-identical to the generic closure sink, with
   the same result value and per-phase reference counts; and
   Runner.record_sweep — which sweeps the grid while the trace is
   produced — must yield per-cache statistics bit-identical to the
   per-event oracle over the sink-path recording, with one job and
   with several.  `make check` runs this binary under REPRO_JOBS=2 as
   well, exercising the jobs selection inside record_sweep. *)

let grid () =
  Memsim.Sweep.create
    (Memsim.Sweep.grid
       ~cache_sizes:[ Memsim.Sweep.kb 32; Memsim.Sweep.kb 256 ]
       ~block_sizes:[ 32; 128 ] ())

let check_identical name reference candidate =
  List.iter2
    (fun (_, (a : Memsim.Cache.stats)) (_, (b : Memsim.Cache.stats)) ->
      Alcotest.(check bool) (name ^ ": stats bit-identical") true (a = b))
    (Memsim.Sweep.results reference)
    (Memsim.Sweep.results candidate)

let test_fast_path w () =
  let oracle_r, oracle_rec = Core.Runner.record ~direct:false ~scale:1 w in
  let fast_r, fast_rec = Core.Runner.record ~scale:1 w in
  Alcotest.(check bool)
    "recordings bit-identical" true
    (Memsim.Recording.equal oracle_rec fast_rec);
  Alcotest.(check string)
    "result value" oracle_r.Core.Runner.value fast_r.Core.Runner.value;
  Alcotest.(check int) "mutator refs" oracle_r.Core.Runner.refs
    fast_r.Core.Runner.refs;
  Alcotest.(check int) "collector refs" oracle_r.Core.Runner.collector_refs
    fast_r.Core.Runner.collector_refs;
  Alcotest.(check int) "recording length"
    (Memsim.Recording.length oracle_rec)
    (oracle_r.Core.Runner.refs + oracle_r.Core.Runner.collector_refs)

let test_record_sweep w () =
  let _, recording = Core.Runner.record ~direct:false ~scale:1 w in
  let oracle = grid () in
  Memsim.Recording.replay recording (Memsim.Sweep.sink oracle);
  let saved = Core.Runner.jobs () in
  Fun.protect
    ~finally:(fun () -> Core.Runner.set_jobs saved)
    (fun () ->
      List.iter
        (fun jobs ->
          Core.Runner.set_jobs jobs;
          let sw = grid () in
          let _, pipelined =
            Core.Runner.record_sweep ~label:"test.fastpath" ~scale:1 sw w
          in
          check_identical
            (Printf.sprintf "record_sweep jobs=%d" jobs)
            oracle sw;
          Alcotest.(check bool)
            (Printf.sprintf "recording complete after pipelining jobs=%d" jobs)
            true
            (Memsim.Recording.equal recording pipelined))
        [ 1; 3 ])

let test_format_roundtrip () =
  (* a real trace survives v1 -> load -> v2 -> load -> v3 -> load
     unchanged (the v3 leg exercises the mmap loader) *)
  let _, recording = Core.Runner.record ~scale:1 Workloads.Workload.nbody in
  let path = Filename.temp_file "repro" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Memsim.Recording.save ~format:Memsim.Recording.V1 recording path;
      let as_v1 = Memsim.Recording.load path in
      Memsim.Recording.save ~format:Memsim.Recording.V2 as_v1 path;
      let as_v2 = Memsim.Recording.load path in
      Alcotest.(check bool)
        "v1 -> v2 round trip" true
        (Memsim.Recording.equal recording as_v2);
      Memsim.Recording.save ~format:Memsim.Recording.V3 as_v2 path;
      let as_v3 = Memsim.Recording.load path in
      Alcotest.(check bool)
        "v2 -> v3 round trip" true
        (Memsim.Recording.equal recording as_v3))

(* The mmap load path (v3) and the heap decode path (v2) must hand
   back the same events for the same trace — and both must match the
   recording that produced the files.  Also pins the mmap recording's
   read-only contract: appends must fail loudly, never corrupt the
   mapped file pages. *)
let test_mmap_vs_heap w () =
  let _, recording = Core.Runner.record ~scale:1 w in
  let load_via format =
    let path = Filename.temp_file "repro" ".trace" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Memsim.Recording.save ~format recording path;
        Memsim.Recording.load path)
  in
  let mapped = load_via Memsim.Recording.V3 in
  let heap = load_via Memsim.Recording.V2 in
  Alcotest.(check bool)
    "mmap load = original" true
    (Memsim.Recording.equal recording mapped);
  Alcotest.(check bool)
    "mmap load = heap load" true
    (Memsim.Recording.equal mapped heap);
  let out = Memsim.Recording.sink mapped in
  Alcotest.check_raises "mapped recording is read-only"
    (Invalid_argument
       "Recording.append: recording is read-only (memory-mapped)")
    (fun () ->
      out.Memsim.Trace.access 0 Memsim.Trace.Read Memsim.Trace.Mutator)

(* Sharded production: for any job count, record_grid's output indexed
   by input order must be bit-for-bit what recording the cells one
   after another produces. *)
let test_record_grid () =
  let serial =
    List.map (fun w -> Core.Runner.record ~scale:1 w) Workloads.Workload.all
  in
  List.iter
    (fun jobs ->
      let recorded =
        Core.Runner.record_grid ~jobs
          (List.map
             (fun w -> Core.Runner.cell ~scale:1 w)
             Workloads.Workload.all)
      in
      List.iteri
        (fun i ((sr : Core.Runner.result), srec) ->
          let r, recording = recorded.(i) in
          let name =
            Printf.sprintf "jobs=%d %s" jobs
              sr.Core.Runner.workload.Workloads.Workload.name
          in
          Alcotest.(check string)
            (name ^ ": result value") sr.Core.Runner.value r.Core.Runner.value;
          Alcotest.(check int)
            (name ^ ": mutator refs") sr.Core.Runner.refs r.Core.Runner.refs;
          Alcotest.(check int)
            (name ^ ": collector refs") sr.Core.Runner.collector_refs
            r.Core.Runner.collector_refs;
          Alcotest.(check bool)
            (name ^ ": recording bit-identical") true
            (Memsim.Recording.equal srec recording))
        serial)
    [ 1; 2; 4 ]

let () =
  Alcotest.run "trace fast path"
    [ ( "direct = sink",
        List.map
          (fun w ->
            Alcotest.test_case w.Workloads.Workload.name `Slow
              (test_fast_path w))
          Workloads.Workload.all );
      ( "record-while-sweep",
        List.map
          (fun w ->
            Alcotest.test_case w.Workloads.Workload.name `Slow
              (test_record_sweep w))
          Workloads.Workload.all );
      ( "sharded producer",
        [ Alcotest.test_case "record_grid = serial, jobs 1/2/4" `Slow
            test_record_grid
        ] );
      ( "formats",
        Alcotest.test_case "v1 -> v2 -> v3 round trip on a real trace" `Slow
          test_format_roundtrip
        :: List.map
             (fun w ->
               Alcotest.test_case
                 ("mmap = heap load, " ^ w.Workloads.Workload.name)
                 `Slow (test_mmap_vs_heap w))
             Workloads.Workload.all )
    ]
