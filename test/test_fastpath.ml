(* Differential tests for the trace fast path and record-while-sweep.

   For every workload, the direct writer (Mem.record_into) must
   produce a recording bit-identical to the generic closure sink, with
   the same result value and per-phase reference counts; and
   Runner.record_sweep — which sweeps the grid while the trace is
   produced — must yield per-cache statistics bit-identical to the
   per-event oracle over the sink-path recording, with one job and
   with several.  `make check` runs this binary under REPRO_JOBS=2 as
   well, exercising the jobs selection inside record_sweep. *)

let grid () =
  Memsim.Sweep.create
    (Memsim.Sweep.grid
       ~cache_sizes:[ Memsim.Sweep.kb 32; Memsim.Sweep.kb 256 ]
       ~block_sizes:[ 32; 128 ] ())

let check_identical name reference candidate =
  List.iter2
    (fun (_, (a : Memsim.Cache.stats)) (_, (b : Memsim.Cache.stats)) ->
      Alcotest.(check bool) (name ^ ": stats bit-identical") true (a = b))
    (Memsim.Sweep.results reference)
    (Memsim.Sweep.results candidate)

let test_fast_path w () =
  let oracle_r, oracle_rec = Core.Runner.record ~direct:false ~scale:1 w in
  let fast_r, fast_rec = Core.Runner.record ~scale:1 w in
  Alcotest.(check bool)
    "recordings bit-identical" true
    (Memsim.Recording.equal oracle_rec fast_rec);
  Alcotest.(check string)
    "result value" oracle_r.Core.Runner.value fast_r.Core.Runner.value;
  Alcotest.(check int) "mutator refs" oracle_r.Core.Runner.refs
    fast_r.Core.Runner.refs;
  Alcotest.(check int) "collector refs" oracle_r.Core.Runner.collector_refs
    fast_r.Core.Runner.collector_refs;
  Alcotest.(check int) "recording length"
    (Memsim.Recording.length oracle_rec)
    (oracle_r.Core.Runner.refs + oracle_r.Core.Runner.collector_refs)

let test_record_sweep w () =
  let _, recording = Core.Runner.record ~direct:false ~scale:1 w in
  let oracle = grid () in
  Memsim.Recording.replay recording (Memsim.Sweep.sink oracle);
  let saved = Core.Runner.jobs () in
  Fun.protect
    ~finally:(fun () -> Core.Runner.set_jobs saved)
    (fun () ->
      List.iter
        (fun jobs ->
          Core.Runner.set_jobs jobs;
          let sw = grid () in
          let _, pipelined =
            Core.Runner.record_sweep ~label:"test.fastpath" ~scale:1 sw w
          in
          check_identical
            (Printf.sprintf "record_sweep jobs=%d" jobs)
            oracle sw;
          Alcotest.(check bool)
            (Printf.sprintf "recording complete after pipelining jobs=%d" jobs)
            true
            (Memsim.Recording.equal recording pipelined))
        [ 1; 3 ])

let test_format_roundtrip () =
  (* a real trace survives v1 -> load -> v2 -> load unchanged *)
  let _, recording = Core.Runner.record ~scale:1 Workloads.Workload.nbody in
  let path = Filename.temp_file "repro" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Memsim.Recording.save ~format:Memsim.Recording.V1 recording path;
      let as_v1 = Memsim.Recording.load path in
      Memsim.Recording.save ~format:Memsim.Recording.V2 as_v1 path;
      let as_v2 = Memsim.Recording.load path in
      Alcotest.(check bool)
        "v1 -> v2 round trip" true
        (Memsim.Recording.equal recording as_v2))

let () =
  Alcotest.run "trace fast path"
    [ ( "direct = sink",
        List.map
          (fun w ->
            Alcotest.test_case w.Workloads.Workload.name `Slow
              (test_fast_path w))
          Workloads.Workload.all );
      ( "record-while-sweep",
        List.map
          (fun w ->
            Alcotest.test_case w.Workloads.Workload.name `Slow
              (test_record_sweep w))
          Workloads.Workload.all );
      ( "formats",
        [ Alcotest.test_case "v1 -> v2 round trip on a real trace" `Slow
            test_format_roundtrip
        ] )
    ]
