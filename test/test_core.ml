(* Experiment-harness tests: runner plumbing, report formatting, the
   experiment registry, and the cheap experiments end to end. *)

let test_runner () =
  let cache =
    Memsim.Cache.create
      (Memsim.Cache.config ~size_bytes:(64 * 1024) ~block_bytes:64 ())
  in
  let r =
    Core.Runner.run ~scale:1
      ~sinks:[ Memsim.Cache.sink cache ]
      Workloads.Workload.prover
  in
  let s = Memsim.Cache.stats cache in
  Alcotest.(check int) "cache saw every mutator ref" r.Core.Runner.refs
    s.Memsim.Cache.refs;
  Alcotest.(check int) "no collector refs without GC" 0 r.Core.Runner.collector_refs;
  Alcotest.(check bool) "instructions counted" true
    (r.Core.Runner.stats.Vscheme.Machine.mutator_insns > 0);
  Alcotest.(check bool) "value printed" true (String.length r.Core.Runner.value > 0)

let test_runner_gc () =
  let r =
    Core.Runner.run ~scale:1
      ~gc:(Vscheme.Machine.Cheney { semispace_bytes = 512 * 1024 })
      Workloads.Workload.lred
  in
  Alcotest.(check bool) "collector refs traced" true (r.Core.Runner.collector_refs > 0)

let test_base_scales () =
  List.iter
    (fun w ->
      Alcotest.(check bool)
        (w.Workloads.Workload.name ^ " has a base scale")
        true
        (Core.Runner.base_scale w >= 1))
    Workloads.Workload.all

let test_layout () =
  let r = Core.Runner.run ~scale:1 Workloads.Workload.prover in
  let dyn = Core.Runner.layout r.Core.Runner.machine ~dynamic_base:true in
  let stack = Core.Runner.layout r.Core.Runner.machine ~dynamic_base:false in
  Alcotest.(check bool) "stack below dynamic" true (stack < dyn);
  Alcotest.(check int) "matches config prediction" dyn
    (Vscheme.Machine.dynamic_base_bytes Vscheme.Machine.default_config)

let test_parse_size () =
  List.iter
    (fun (input, expect) ->
      match Core.Units.parse_size input with
      | Ok n -> Alcotest.(check int) input expect n
      | Error msg -> Alcotest.fail (input ^ ": " ^ msg))
    [ ("1", 1);
      ("4096", 4096);
      ("64k", 64 * 1024);
      ("64K", 64 * 1024);
      ("2m", 2 * 1024 * 1024);
      ("16M", 16 * 1024 * 1024);
      ("1g", 1024 * 1024 * 1024);
      ("2G", 2 * 1024 * 1024 * 1024);
      (" 8k ", 8 * 1024)
    ];
  List.iter
    (fun input ->
      match Core.Units.parse_size input with
      | Ok n -> Alcotest.fail (Printf.sprintf "%S accepted as %d" input n)
      | Error _ -> ())
    [ ""; "k"; "0"; "0k"; "-1"; "-4k"; "1.5m"; "12q"; "1kk"; "0x10";
      (* overflow: the raw digits fit max_int, the multiply does not *)
      "9223372036854775807k"; "9007199254740993g" ]

let test_report_table () =
  let buf = Buffer.create 128 in
  let ppf = Format.formatter_of_buffer buf in
  Core.Report.table ppf ~headers:[ "a"; "bb" ]
    ~rows:[ [ "x"; "1" ]; [ "longer"; "22" ] ];
  Format.pp_print_flush ppf ();
  let lines = String.split_on_char '\n' (Buffer.contents buf) in
  (* header, rule, two rows, trailing empty *)
  Alcotest.(check int) "line count" 5 (List.length lines);
  Alcotest.(check bool) "aligned" true
    (String.length (List.nth lines 2) = String.length (List.nth lines 3))

let test_report_helpers () =
  Alcotest.(check string) "pct" "12.5%" (Core.Report.pct 0.125);
  Alcotest.(check string) "negative pct" "-3.0%" (Core.Report.pct (-0.03));
  Alcotest.(check string) "mb" "1.5mb" (Core.Report.mb (3 * 512 * 1024));
  Alcotest.(check string) "eng" "3.68e9" (Core.Report.eng 3_680_000_000);
  Alcotest.(check string) "eng zero" "0" (Core.Report.eng 0);
  Alcotest.(check string) "size label" "64k" (Core.Report.size_label (64 * 1024))

let test_registry () =
  Alcotest.(check int) "twenty-one experiments" 21
    (List.length Core.Experiments.all);
  let ids =
    [ "T1"; "T2"; "F1"; "T3"; "T4"; "F2"; "T5"; "T6"; "F3"; "F4"; "T7"; "T8";
      "F5"; "F6"; "F7"; "F8"; "A1"; "A2"; "A3"; "A4"; "H1" ]
  in
  Alcotest.(check (list string)) "ids in paper order" ids
    (List.map (fun e -> e.Core.Experiments.id) Core.Experiments.all);
  Alcotest.(check bool) "case-insensitive lookup" true
    (match Core.Experiments.find "f3" with
     | Some e -> e.Core.Experiments.id = "F3"
     | None -> false);
  Alcotest.(check bool) "unknown id" true (Core.Experiments.find "F99" = None);
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (e.Core.Experiments.id ^ " cites the paper")
        true
        (String.length e.Core.Experiments.paper_artifact > 0))
    Core.Experiments.all

let run_experiment id =
  match Core.Experiments.find id with
  | None -> Alcotest.fail ("missing experiment " ^ id)
  | Some e ->
    let buf = Buffer.create 4096 in
    let ppf = Format.formatter_of_buffer buf in
    e.Core.Experiments.run ppf;
    Format.pp_print_flush ppf ();
    Buffer.contents buf

let contains haystack needle =
  let n = String.length needle in
  let rec scan i =
    i + n <= String.length haystack
    && (String.sub haystack i n = needle || scan (i + 1))
  in
  scan 0

let test_t2_values () =
  let out = run_experiment "T2" in
  (* spot-check the exact derived penalties *)
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains out needle))
    [ "120"; "165"; "345"; "23" ]

let test_t1_runs () =
  let out = run_experiment "T1" in
  List.iter
    (fun w ->
      Alcotest.(check bool)
        (w.Workloads.Workload.name ^ " in table")
        true
        (contains out w.Workloads.Workload.name))
    Workloads.Workload.all

let () =
  Alcotest.run "core"
    [ ( "runner",
        [ Alcotest.test_case "runner wiring" `Quick test_runner;
          Alcotest.test_case "runner with GC" `Quick test_runner_gc;
          Alcotest.test_case "base scales" `Quick test_base_scales;
          Alcotest.test_case "layout" `Quick test_layout
        ] );
      ( "units",
        [ Alcotest.test_case "parse_size" `Quick test_parse_size ] );
      ( "report",
        [ Alcotest.test_case "table" `Quick test_report_table;
          Alcotest.test_case "helpers" `Quick test_report_helpers
        ] );
      ( "experiments",
        [ Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "T2 exact values" `Quick test_t2_values;
          Alcotest.test_case "T1 runs" `Slow test_t1_runs
        ] )
    ]
