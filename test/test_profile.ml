(* Attribution-profiler tests: conservation of the per-region /
   per-phase / per-site accounting against the aggregate cache
   counters (differential, serial and parallel), sampling exactness,
   sidecar persistence, the attr checker rules, and the presentation
   pipeline (cook, heatmap rendering, collapsed stacks, overlays). *)

let sum = Array.fold_left ( + ) 0

(* Sum a num_slots profile array over one phase (0 mutator, 1
   collector). *)
let phase_sum (a : int array) ph =
  let t = ref 0 in
  for r = 0 to Memsim.Attr.num_regions - 1 do
    t := !t + a.((r * 2) + ph)
  done;
  !t

let small_caches =
  Memsim.Sweep.grid
    ~cache_sizes:[ 16 * 1024; 64 * 1024 ]
    ~block_sizes:[ 32 ] ()

(* --- Conservation: attribution sums to the aggregate counters ------- *)

(* Replay one captured recording twice over the same cache grid — once
   plain (the oracle), once attributed — and check that (1) aggregate
   statistics are bit-identical, and (2) with every chunk attributed,
   each profile array sums per phase to the corresponding aggregate
   counter exactly. *)
let check_conservation ?gc ?(jobs = Core.Runner.jobs ()) ?(sample_every = 1) w
    =
  let _r, recording, table, addr_limit =
    Core.Profile.capture ?gc ~scale:1 w
  in
  let events = Memsim.Recording.length recording in
  Alcotest.(check bool) "trace is non-trivial" true (events > 0);
  let plain = Memsim.Sweep.create small_caches in
  Memsim.Sweep.run_serial plain recording;
  let swept = Memsim.Sweep.create small_caches in
  let profiles =
    Memsim.Sweep.run_attributed ~jobs ~sample_every ~addr_limit swept table
      recording
  in
  let oracle = Memsim.Sweep.results plain in
  let attributed = Memsim.Sweep.results swept in
  List.iteri
    (fun i ((_, s), (_, s')) ->
      let open Memsim.Cache in
      let p = profiles.(i) in
      Alcotest.(check bool)
        (Printf.sprintf "cache %d: aggregate stats bit-identical" i)
        true (s = s');
      Alcotest.(check int) "sample rate echoed" sample_every
        p.Memsim.Attr.sample_every;
      Alcotest.(check int) "every chunk counted"
        ((events + Memsim.Chunk.default_chunk_events - 1)
        / Memsim.Chunk.default_chunk_events)
        p.Memsim.Attr.chunks_seen;
      Alcotest.(check int) "sampled chunk count"
        ((p.Memsim.Attr.chunks_seen + sample_every - 1) / sample_every)
        p.Memsim.Attr.chunks_attributed;
      if sample_every = 1 then begin
        Alcotest.(check int) "all events attributed" events
          p.Memsim.Attr.events_attributed;
        (* Each array, summed per phase, equals the aggregate. *)
        Alcotest.(check int) "mutator refs" s.refs
          (phase_sum p.Memsim.Attr.refs 0);
        Alcotest.(check int) "collector refs" s.collector_refs
          (phase_sum p.Memsim.Attr.refs 1);
        Alcotest.(check int) "mutator misses" s.misses
          (phase_sum p.Memsim.Attr.misses 0);
        Alcotest.(check int) "collector misses" s.collector_misses
          (phase_sum p.Memsim.Attr.misses 1);
        Alcotest.(check int) "alloc misses" s.alloc_misses
          (sum p.Memsim.Attr.alloc_misses);
        Alcotest.(check int) "mutator fetches" s.fetches
          (phase_sum p.Memsim.Attr.fetches 0);
        Alcotest.(check int) "collector fetches" s.collector_fetches
          (phase_sum p.Memsim.Attr.fetches 1);
        Alcotest.(check int) "writebacks" s.writebacks
          (sum p.Memsim.Attr.writebacks);
        Alcotest.(check int) "collector writebacks" s.collector_writebacks
          (phase_sum p.Memsim.Attr.writebacks 1);
        Alcotest.(check int) "writes" s.writes (sum p.Memsim.Attr.writes);
        Alcotest.(check int) "collector writes" s.collector_writes
          (phase_sum p.Memsim.Attr.writes 1);
        (* Site accounting conserves the same alloc-miss total. *)
        Alcotest.(check int) "site alloc misses" s.alloc_misses
          (sum p.Memsim.Attr.site_alloc_misses);
        (* Every miss lands in exactly one heat cell and one
           region-time cell. *)
        let total_misses = s.misses + s.collector_misses in
        Alcotest.(check int) "heat total" total_misses
          (sum p.Memsim.Attr.heat);
        Alcotest.(check int) "region-time total" total_misses
          (sum p.Memsim.Attr.region_time)
      end
      else begin
        (* Sampling thins attribution but never the aggregates
           (checked above); attributed tallies stay internally
           consistent and bounded. *)
        Alcotest.(check bool) "attributed events bounded" true
          (p.Memsim.Attr.events_attributed <= events);
        Alcotest.(check bool) "attributed misses bounded" true
          (sum p.Memsim.Attr.misses <= s.misses + s.collector_misses);
        Alcotest.(check int) "heat matches attributed misses"
          (sum p.Memsim.Attr.misses)
          (sum p.Memsim.Attr.heat);
        Alcotest.(check int) "sites match attributed alloc misses"
          (sum p.Memsim.Attr.alloc_misses)
          (sum p.Memsim.Attr.site_alloc_misses);
        if p.Memsim.Attr.chunks_seen > 1 then
          Alcotest.(check bool) "sampling actually skipped chunks" true
            (p.Memsim.Attr.chunks_attributed < p.Memsim.Attr.chunks_seen)
      end;
      (* A site can only miss on an initializing store it performed. *)
      Array.iteri
        (fun si am ->
          Alcotest.(check bool)
            (Printf.sprintf "site %d misses <= writes" si)
            true
            (am <= p.Memsim.Attr.site_alloc_writes.(si)))
        p.Memsim.Attr.site_alloc_misses)
    (List.combine oracle attributed)

let test_conservation_nogc () =
  List.iter check_conservation
    [ Workloads.Workload.nbody; Workloads.Workload.mexpr ]

let test_conservation_gc () =
  check_conservation
    ~gc:(Vscheme.Machine.Cheney { semispace_bytes = 256 * 1024 })
    Workloads.Workload.nbody

let test_conservation_parallel () =
  check_conservation ~jobs:2
    ~gc:(Vscheme.Machine.Cheney { semispace_bytes = 256 * 1024 })
    Workloads.Workload.nbody

let test_conservation_sampled () =
  check_conservation ~sample_every:4
    ~gc:(Vscheme.Machine.Cheney { semispace_bytes = 256 * 1024 })
    Workloads.Workload.nbody

(* A collected run must attribute real traffic to the dynamic regions
   and to at least one non-runtime allocation site. *)
let test_attribution_is_meaningful () =
  let _r, recording, table, addr_limit =
    Core.Profile.capture
      ~gc:(Vscheme.Machine.Cheney { semispace_bytes = 256 * 1024 })
      ~scale:1 Workloads.Workload.nbody
  in
  let swept =
    Memsim.Sweep.create
      (Memsim.Sweep.grid ~cache_sizes:[ 64 * 1024 ] ~block_sizes:[ 32 ] ())
  in
  let profiles =
    Memsim.Sweep.run_attributed ~addr_limit swept table recording
  in
  let p = profiles.(0) in
  Alcotest.(check bool) "region map was published" true
    (Memsim.Attr.num_epochs table > 0);
  Alcotest.(check bool) "several sites interned" true
    (Memsim.Attr.num_sites table > 1);
  let tospace_refs =
    p.Memsim.Attr.refs.(Memsim.Attr.region_tospace * 2)
    + p.Memsim.Attr.refs.((Memsim.Attr.region_tospace * 2) + 1)
  in
  Alcotest.(check bool) "tospace saw traffic" true (tospace_refs > 0);
  Alcotest.(check bool) "static saw traffic" true
    (p.Memsim.Attr.refs.(Memsim.Attr.region_static * 2) > 0);
  let collector_refs = phase_sum p.Memsim.Attr.refs 1 in
  Alcotest.(check bool) "collector phase attributed" true
    (collector_refs > 0);
  let named_site_misses =
    let t = ref 0 in
    Array.iteri
      (fun i am -> if i <> Memsim.Attr.runtime_site then t := !t + am)
      p.Memsim.Attr.site_alloc_misses;
    !t
  in
  Alcotest.(check bool) "non-runtime sites own alloc misses" true
    (named_site_misses > 0)

(* --- Sidecar persistence ------------------------------------------- *)

let temp_path suffix =
  Filename.temp_file "test_profile" suffix

let test_attr_save_load () =
  let t = Memsim.Attr.create () in
  Memsim.Attr.publish_map t ~pos:0 ~stack_lo:100 ~dynamic_lo:200 ~to_lo:200
    ~to_hi:300 ~from_lo:300 ~from_hi:400;
  Memsim.Attr.publish_map t ~pos:50 ~stack_lo:100 ~dynamic_lo:200 ~to_lo:300
    ~to_hi:400 ~from_lo:200 ~from_hi:300;
  let s1 = Memsim.Attr.intern_site t "prim:cons" in
  let s2 = Memsim.Attr.intern_site t "closure:loop" in
  Memsim.Attr.note_site t ~pos:10 s1;
  Memsim.Attr.note_site t ~pos:20 s2;
  Memsim.Attr.note_site t ~pos:30 Memsim.Attr.runtime_site;
  let path = temp_path ".attr" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Memsim.Attr.save t path;
      let u = Memsim.Attr.load path in
      Alcotest.(check int) "epochs" (Memsim.Attr.num_epochs t)
        (Memsim.Attr.num_epochs u);
      Alcotest.(check int) "runs" (Memsim.Attr.num_runs t)
        (Memsim.Attr.num_runs u);
      Alcotest.(check int) "sites" (Memsim.Attr.num_sites t)
        (Memsim.Attr.num_sites u);
      for i = 0 to Memsim.Attr.num_sites t - 1 do
        Alcotest.(check string) "site name" (Memsim.Attr.site_name t i)
          (Memsim.Attr.site_name u i)
      done;
      for i = 0 to Memsim.Attr.num_epochs t - 1 do
        Alcotest.(check int) "epoch pos" t.Memsim.Attr.epoch_pos.(i)
          u.Memsim.Attr.epoch_pos.(i);
        Alcotest.(check int) "epoch to_lo" t.Memsim.Attr.epoch_to_lo.(i)
          u.Memsim.Attr.epoch_to_lo.(i);
        Alcotest.(check int) "epoch from_hi" t.Memsim.Attr.epoch_from_hi.(i)
          u.Memsim.Attr.epoch_from_hi.(i)
      done;
      for i = 0 to Memsim.Attr.num_runs t - 1 do
        Alcotest.(check int) "run pos" t.Memsim.Attr.run_pos.(i)
          u.Memsim.Attr.run_pos.(i);
        Alcotest.(check int) "run site" t.Memsim.Attr.run_site.(i)
          u.Memsim.Attr.run_site.(i)
      done;
      Alcotest.(check bool) "clipped flag" (Memsim.Attr.sites_clipped t)
        (Memsim.Attr.sites_clipped u))

let test_attr_load_rejects_garbage () =
  let path = temp_path ".attr" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "not an attribution sidecar";
      close_out oc;
      match Memsim.Attr.load path with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "garbage sidecar loaded")

(* --- The checker --------------------------------------------------- *)

let rules results =
  List.map (fun f -> f.Check.Finding.rule) results
  |> List.sort_uniq String.compare

let test_attr_check_clean () =
  let t = Memsim.Attr.create () in
  Memsim.Attr.publish_map t ~pos:0 ~stack_lo:100 ~dynamic_lo:200 ~to_lo:200
    ~to_hi:300 ~from_lo:300 ~from_hi:400;
  let s = Memsim.Attr.intern_site t "prim:cons" in
  Memsim.Attr.note_site t ~pos:10 s;
  let path = temp_path ".attr" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Memsim.Attr.save t path;
      let r = Check.Attr_check.scan ~events:100 path in
      Alcotest.(check bool) "table loaded" true (r.Check.Attr_check.table <> None);
      Alcotest.(check (list string)) "no findings" []
        (rules r.Check.Attr_check.findings))

let test_attr_check_rules () =
  (* map-range: tospace interval dips below the dynamic floor *)
  let t = Memsim.Attr.create () in
  Memsim.Attr.publish_map t ~pos:0 ~stack_lo:100 ~dynamic_lo:200 ~to_lo:150
    ~to_hi:300 ~from_lo:300 ~from_hi:400;
  let path = temp_path ".attr" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Memsim.Attr.save t path;
      let r = Check.Attr_check.scan ~events:100 path in
      Alcotest.(check bool) "attr.map-range fires" true
        (List.mem "attr.map-range" (rules r.Check.Attr_check.findings)));
  (* events-bound: positions beyond the recording *)
  let t = Memsim.Attr.create () in
  Memsim.Attr.publish_map t ~pos:500 ~stack_lo:100 ~dynamic_lo:200 ~to_lo:200
    ~to_hi:300 ~from_lo:300 ~from_hi:400;
  let path = temp_path ".attr" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Memsim.Attr.save t path;
      let r = Check.Attr_check.scan ~events:100 path in
      Alcotest.(check bool) "attr.events-bound fires" true
        (List.mem "attr.events-bound" (rules r.Check.Attr_check.findings)));
  (* no-epochs: a table that never saw a region map *)
  let t = Memsim.Attr.create () in
  let path = temp_path ".attr" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Memsim.Attr.save t path;
      let r = Check.Attr_check.scan path in
      Alcotest.(check bool) "attr.no-epochs fires" true
        (List.mem "attr.no-epochs" (rules r.Check.Attr_check.findings)));
  (* io: a missing file *)
  let r = Check.Attr_check.scan "/nonexistent/missing.attr" in
  Alcotest.(check bool) "attr.io fires" true
    (List.mem "attr.io" (rules r.Check.Attr_check.findings));
  (* format: a corrupt file *)
  let path = temp_path ".attr" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "ATTRSID1 but then garbage";
      close_out oc;
      let r = Check.Attr_check.scan path in
      Alcotest.(check bool) "attr.format fires" true
        (List.mem "attr.format" (rules r.Check.Attr_check.findings)))

(* --- Heatmap rendering --------------------------------------------- *)

let test_heatmap_render () =
  let counts = [| 0; 1; 10; 1000; 0; 0; 5; 100 |] in
  let out =
    Format.asprintf "%a"
      (fun ppf () ->
        Analysis.Heatmap.render ppf
          ~row_label:(fun r -> Printf.sprintf "r%d" r)
          ~rows:2 ~cols:4 counts)
      ()
  in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check bool) "mentions the max cell" true
    (List.exists
       (fun l ->
         let n = String.length l in
         n >= 4 && String.sub l (n - 4) 4 = "1000")
       lines);
  (* the zero cell renders as the lowest ramp level, the max as the
     highest *)
  let ramp = Analysis.Heatmap.default_ramp in
  Alcotest.(check bool) "uses low ramp char" true
    (String.contains out ramp.[0]);
  Alcotest.(check bool) "uses high ramp char" true
    (String.contains out ramp.[String.length ramp - 1]);
  Alcotest.(check bool) "row labels present" true
    (List.exists
       (fun l ->
         String.length l >= 2 && String.sub l 0 2 = "r0")
       lines)

let test_heatmap_render_rejects () =
  Alcotest.check_raises "dim mismatch"
    (Invalid_argument "Heatmap.render: dimensions do not match counts")
    (fun () ->
      Analysis.Heatmap.render Format.str_formatter ~rows:2 ~cols:2
        [| 1; 2; 3 |])

(* --- The presentation pipeline ------------------------------------- *)

(* A hand-built profile with known numbers, cooked into the
   presentation model. *)
let cooked_fixture () =
  let table = Memsim.Attr.create () in
  let s_cons = Memsim.Attr.intern_site table "prim:cons" in
  let s_vec = Memsim.Attr.intern_site table "prim:make-vector" in
  let p =
    Memsim.Attr.profile_create ~heat_rows:2 ~heat_cols:2
      ~num_sites:(Memsim.Attr.num_sites table)
      ~addr_limit:1024 ~events:100 ()
  in
  let slot r ph = (r * 2) + ph in
  p.Memsim.Attr.refs.(slot Memsim.Attr.region_tospace 0) <- 60;
  p.Memsim.Attr.misses.(slot Memsim.Attr.region_tospace 0) <- 12;
  p.Memsim.Attr.alloc_misses.(slot Memsim.Attr.region_tospace 0) <- 9;
  p.Memsim.Attr.refs.(slot Memsim.Attr.region_static 0) <- 40;
  p.Memsim.Attr.misses.(slot Memsim.Attr.region_static 0) <- 3;
  p.Memsim.Attr.refs.(slot Memsim.Attr.region_fromspace 1) <- 20;
  p.Memsim.Attr.misses.(slot Memsim.Attr.region_fromspace 1) <- 5;
  p.Memsim.Attr.site_alloc_misses.(s_cons) <- 6;
  p.Memsim.Attr.site_alloc_writes.(s_cons) <- 30;
  p.Memsim.Attr.site_alloc_misses.(s_vec) <- 3;
  p.Memsim.Attr.site_alloc_writes.(s_vec) <- 10;
  p.Memsim.Attr.heat.(0) <- 15;
  p.Memsim.Attr.heat.(3) <- 5;
  p.Memsim.Attr.region_time.(Memsim.Attr.region_tospace) <- 12;
  Core.Profile.cook ~workload:"unit" ~cache:"64k/32b write-validate"
    ~events:100 table p

let test_cook () =
  let prof = cooked_fixture () in
  Alcotest.(check int) "one cell per region x phase"
    (Memsim.Attr.num_regions * 2)
    (List.length prof.Obs.Profile.cells);
  Alcotest.(check int) "total misses" 20 (Obs.Profile.total_misses prof);
  let tospace_mut =
    List.find
      (fun c ->
        c.Obs.Profile.region = "tospace" && c.Obs.Profile.phase = "mutator")
      prof.Obs.Profile.cells
  in
  Alcotest.(check int) "tospace mutator misses" 12
    tospace_mut.Obs.Profile.misses;
  Alcotest.(check int) "tospace mutator alloc misses" 9
    tospace_mut.Obs.Profile.alloc_misses;
  (* sites ranked by alloc misses, idle sites dropped *)
  (match prof.Obs.Profile.sites with
   | a :: b :: rest ->
     Alcotest.(check string) "top site" "prim:cons" a.Obs.Profile.site;
     Alcotest.(check int) "top site misses" 6 a.Obs.Profile.alloc_misses;
     Alcotest.(check string) "second site" "prim:make-vector"
       b.Obs.Profile.site;
     Alcotest.(check (list string)) "runtime site dropped" []
       (List.map (fun s -> s.Obs.Profile.site) rest)
   | _ -> Alcotest.fail "expected two active sites");
  Alcotest.(check int) "top_sites bounds" 1
    (List.length (Obs.Profile.top_sites ~n:1 prof));
  (* collapsed stacks carry workload;site weight lines *)
  let folded = Obs.Profile.collapsed_stacks prof in
  Alcotest.(check bool) "folded has cons line" true
    (let needle = "unit;prim:cons 6\n" in
     let rec search i =
       i + String.length needle <= String.length folded
       && (String.sub folded i (String.length needle) = needle
           || search (i + 1))
     in
     search 0);
  (* JSON export is well-formed and self-consistent *)
  let j = Obs.Profile.to_json prof in
  (match Obs.Json.of_string (Obs.Json.to_string j) with
   | Ok _ -> ()
   | Error msg -> Alcotest.fail msg);
  Alcotest.(check (option int)) "json total misses" (Some 20)
    (Option.bind (Obs.Json.member "total_misses" j) Obs.Json.to_int)

let test_overlay () =
  let prof = cooked_fixture () in
  let tl = Obs.Events.create () in
  Obs.Profile.overlay prof tl;
  let evs = Obs.Events.events tl in
  Alcotest.(check bool) "overlay emitted samples" true (List.length evs > 0);
  List.iter
    (fun e ->
      Alcotest.(check bool) "samples only" true
        (e.Obs.Events.kind = Obs.Events.Sample);
      Alcotest.(check string) "profile category" "profile" e.Obs.Events.cat;
      match e.Obs.Events.args with
      | [ ("misses", Obs.Events.I v) ] ->
        Alcotest.(check bool) "positive counts only" true (v > 0)
      | _ -> Alcotest.fail "unexpected overlay args")
    evs

(* End to end through the public pipeline: capture, replay, cook. *)
let test_profile_recording_pipeline () =
  let _r, recording, table, addr_limit =
    Core.Profile.capture
      ~gc:(Vscheme.Machine.Cheney { semispace_bytes = 256 * 1024 })
      ~scale:1 Workloads.Workload.nbody
  in
  let caches =
    Memsim.Sweep.grid ~cache_sizes:[ 64 * 1024 ] ~block_sizes:[ 32 ] ()
  in
  let profs =
    Core.Profile.profile_recording ~workload:"nbody" ~addr_limit ~caches table
      recording
  in
  let prof = List.hd profs in
  Alcotest.(check int) "events echoed" (Memsim.Recording.length recording)
    prof.Obs.Profile.events;
  Alcotest.(check string) "cache label" "64k/32b write-validate"
    prof.Obs.Profile.cache;
  (* cell sums match the profile totals the cells were cooked from *)
  let cell_misses =
    List.fold_left
      (fun acc c -> acc + c.Obs.Profile.misses)
      0 prof.Obs.Profile.cells
  in
  Alcotest.(check int) "cells sum to total" cell_misses
    (Obs.Profile.total_misses prof);
  Alcotest.(check bool) "heat grid populated" true
    (sum prof.Obs.Profile.heat.Obs.Profile.counts = cell_misses);
  Alcotest.(check bool) "some site attributed" true
    (prof.Obs.Profile.sites <> [])

let () =
  Alcotest.run "profile"
    [ ( "conservation",
        [ Alcotest.test_case "no-gc workloads" `Quick test_conservation_nogc;
          Alcotest.test_case "collected run" `Quick test_conservation_gc;
          Alcotest.test_case "parallel replay" `Quick
            test_conservation_parallel;
          Alcotest.test_case "sampled replay" `Quick
            test_conservation_sampled;
          Alcotest.test_case "attribution is meaningful" `Quick
            test_attribution_is_meaningful
        ] );
      ( "sidecar",
        [ Alcotest.test_case "save/load round-trip" `Quick
            test_attr_save_load;
          Alcotest.test_case "load rejects garbage" `Quick
            test_attr_load_rejects_garbage
        ] );
      ( "checker",
        [ Alcotest.test_case "clean sidecar" `Quick test_attr_check_clean;
          Alcotest.test_case "rules fire" `Quick test_attr_check_rules
        ] );
      ( "render",
        [ Alcotest.test_case "heatmap" `Quick test_heatmap_render;
          Alcotest.test_case "heatmap rejects" `Quick
            test_heatmap_render_rejects
        ] );
      ( "pipeline",
        [ Alcotest.test_case "cook" `Quick test_cook;
          Alcotest.test_case "overlay" `Quick test_overlay;
          Alcotest.test_case "capture-replay-cook" `Quick
            test_profile_recording_pipeline
        ] )
    ]
