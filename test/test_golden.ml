(* The golden-run regression subsystem:

   - manifests and fixtures round-trip through their sexp files;
   - the comparator is clean against itself and localizes every kind of
     perturbation (exact count, derived ratio, grid geometry, manifest
     drift) as a distinct finding;
   - checkpoint/resume: a sweep killed after any checkpoint and resumed
     in a fresh process state finishes bit-identical to an
     uninterrupted run, serial and parallel, and stale or foreign
     checkpoints are rejected rather than silently replayed over;
   - the resilient trace I/O layer survives injected transient errors,
     ENOSPC, short writes and bit rot without ever leaving a torn file
     at the destination, and recovers the intact prefix of a damaged
     file as an explicit partial result. *)

let tmp_file =
  let n = ref 0 in
  fun suffix ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "test_golden_%d_%d%s" (Unix.getpid ()) !n suffix)

let with_tmp suffix f =
  let path = tmp_file suffix in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let smoke_run =
  match Golden.Manifest.(find default "prover") with
  | Some r -> r
  | None -> assert false

(* --- Manifest / fixture serialization ----------------------------------- *)

let test_manifest_roundtrip () =
  with_tmp ".sexp" (fun path ->
      Golden.Manifest.(save default path);
      let back = Golden.Manifest.load path in
      Alcotest.(check bool) "manifest survives its file" true
        (back = Golden.Manifest.default))

let test_manifest_rejects_bad_version () =
  with_tmp ".sexp" (fun path ->
      let oc = open_out path in
      output_string oc "(golden-manifest (version 999) (runs))";
      close_out oc;
      match Golden.Manifest.load path with
      | exception Golden.Sx.Parse_error msg ->
        Alcotest.(check bool) "diagnostic names the version" true
          (contains msg "999")
      | _ -> Alcotest.fail "expected Parse_error")

let test_manifest_rejects_garbage () =
  with_tmp ".sexp" (fun path ->
      let oc = open_out path in
      output_string oc "(elephant 7)";
      close_out oc;
      (match Golden.Manifest.load path with
       | exception Golden.Sx.Parse_error _ -> ()
       | _ -> Alcotest.fail "expected Parse_error");
      match Golden.Manifest.load (path ^ ".does-not-exist") with
      | exception Golden.Sx.Parse_error _ -> ()
      | _ -> Alcotest.fail "expected Parse_error for a missing file")

let measured = lazy (Golden.Fixture.measure smoke_run)

let test_fixture_roundtrip () =
  let fx = Lazy.force measured in
  with_tmp ".sexp" (fun path ->
      Golden.Fixture.save fx path;
      let back = Golden.Fixture.load path in
      Alcotest.(check bool) "fixture survives its file" true (back = fx))

(* --- Comparator ---------------------------------------------------------- *)

let rules fs = List.map (fun f -> f.Check.Finding.rule) fs

let test_compare_self_clean () =
  let fx = Lazy.force measured in
  Alcotest.(check (list string)) "no findings against itself" []
    (rules (Golden.Fixture.compare ~file:"f" ~expected:fx ~actual:fx ()))

let test_compare_localizes_count () =
  let fx = Lazy.force measured in
  let perturbed = { fx with Golden.Fixture.collections = fx.collections + 1 } in
  let fs = Golden.Fixture.compare ~file:"f" ~expected:perturbed ~actual:fx () in
  Alcotest.(check (list string)) "one exact-count finding" [ "golden.count" ]
    (rules fs);
  let msg = (List.hd fs).Check.Finding.message in
  Alcotest.(check bool) "message names the field" true
    (contains msg "collections")

let test_compare_localizes_cache_counter () =
  let fx = Lazy.force measured in
  let bump = function
    | ({ Golden.Fixture.stats; _ } as c) :: rest ->
      { c with Golden.Fixture.stats =
          { stats with Memsim.Cache.misses = stats.Memsim.Cache.misses + 1 } }
      :: rest
    | [] -> assert false
  in
  let perturbed = { fx with Golden.Fixture.caches = bump fx.caches } in
  let fs = Golden.Fixture.compare ~file:"f" ~expected:perturbed ~actual:fx () in
  Alcotest.(check bool) "golden.count reported" true
    (List.mem "golden.count" (rules fs))

let test_compare_ratio_band () =
  let fx = Lazy.force measured in
  let nudge eps = function
    | ({ Golden.Fixture.miss_ratio; _ } as c) :: rest ->
      { c with Golden.Fixture.miss_ratio = miss_ratio *. (1.0 +. eps) } :: rest
    | [] -> assert false
  in
  (* inside the band: a last-ulp reformulation is not a regression *)
  let close = { fx with Golden.Fixture.caches = nudge 1e-12 fx.caches } in
  Alcotest.(check (list string)) "inside the band" []
    (rules (Golden.Fixture.compare ~file:"f" ~expected:close ~actual:fx ()));
  (* outside: flagged as a ratio drift *)
  let far = { fx with Golden.Fixture.caches = nudge 1e-6 fx.caches } in
  let fs = Golden.Fixture.compare ~file:"f" ~expected:far ~actual:fx () in
  Alcotest.(check bool) "golden.ratio reported" true
    (List.mem "golden.ratio" (rules fs))

let test_compare_grid_mismatch () =
  let fx = Lazy.force measured in
  let expected =
    match fx.Golden.Fixture.caches with
    | c :: rest ->
      { fx with
        Golden.Fixture.caches =
          { c with Golden.Fixture.size_bytes = c.Golden.Fixture.size_bytes * 2 }
          :: rest
      }
    | [] -> assert false
  in
  let fs = Golden.Fixture.compare ~file:"f" ~expected ~actual:fx () in
  Alcotest.(check bool) "golden.grid reported" true
    (List.mem "golden.grid" (rules fs))

let test_compare_run_drift () =
  let fx = Lazy.force measured in
  let expected =
    { fx with
      Golden.Fixture.run = { fx.Golden.Fixture.run with Golden.Manifest.jobs = 7 }
    }
  in
  let fs = Golden.Fixture.compare ~file:"f" ~expected ~actual:fx () in
  Alcotest.(check bool) "golden.run reported" true
    (List.mem "golden.run" (rules fs))

(* --- Checkpoint / resume ------------------------------------------------- *)

let mk_recording n =
  let rec_ = Memsim.Recording.create ~initial_capacity:64 () in
  let sink = Memsim.Recording.sink rec_ in
  let st = Random.State.make [| n; 0x60 |] in
  for _ = 1 to n do
    let addr = Random.State.int st 16384 * 4 in
    let kind =
      match Random.State.int st 3 with
      | 0 -> Memsim.Trace.Read
      | 1 -> Memsim.Trace.Write
      | _ -> Memsim.Trace.Alloc_write
    in
    let phase =
      if Random.State.int st 5 = 0 then Memsim.Trace.Collector
      else Memsim.Trace.Mutator
    in
    sink.Memsim.Trace.access addr kind phase
  done;
  rec_

let grid_configs =
  Memsim.Sweep.grid
    ~cache_sizes:[ 4096; 16384 ] ~block_sizes:[ 32; 64 ] ()

let sweep_results sweep =
  List.map (fun (_, s) -> s) (Memsim.Sweep.results sweep)

exception Killed

(* Replay with a checkpoint every [every] events, raising Killed from
   the progress callback after [kill_after] checkpoints — then resume
   with a fresh sweep (fresh process state) until it completes.  The
   final statistics must be bit-identical to an uninterrupted serial
   run, however often it died. *)
let run_with_kills ~jobs ~every ~kill_after recording =
  with_tmp ".ckpt" (fun ck ->
      let finished = ref None in
      while !finished = None do
        let sweep = Memsim.Sweep.create grid_configs in
        let seen = ref 0 in
        let progress cursor =
          incr seen;
          if !seen > kill_after && cursor < Memsim.Recording.length recording
          then raise Killed
        in
        match
          Memsim.Sweep.run_resumable ~jobs ~checkpoint_every:every ~progress
            ~checkpoint:ck sweep recording
        with
        | () -> finished := Some (sweep_results sweep)
        | exception Killed -> ()
      done;
      Option.get !finished)

let test_resume_equals_uninterrupted () =
  let recording = mk_recording 50_000 in
  let oracle = Memsim.Sweep.create grid_configs in
  Memsim.Sweep.run_serial oracle recording;
  let expected = sweep_results oracle in
  List.iter
    (fun (jobs, kill_after) ->
      let got = run_with_kills ~jobs ~every:7_000 ~kill_after recording in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d killed-after=%d = uninterrupted" jobs
           kill_after)
        true (got = expected))
    [ (1, 1); (1, 3); (2, 1); (4, 2) ]

let test_resume_without_interruption () =
  let recording = mk_recording 10_000 in
  let oracle = Memsim.Sweep.create grid_configs in
  Memsim.Sweep.run_serial oracle recording;
  with_tmp ".ckpt" (fun ck ->
      let sweep = Memsim.Sweep.create grid_configs in
      Memsim.Sweep.run_resumable ~checkpoint_every:3_000 ~checkpoint:ck sweep
        recording;
      Alcotest.(check bool) "single pass = serial" true
        (sweep_results sweep = sweep_results oracle);
      (* the final checkpoint is on disk at cursor = length: running
         again restores and replays nothing, same statistics *)
      let again = Memsim.Sweep.create grid_configs in
      Memsim.Sweep.run_resumable ~checkpoint_every:3_000 ~checkpoint:ck again
        recording;
      Alcotest.(check bool) "idempotent second pass" true
        (sweep_results again = sweep_results oracle))

let test_checkpoint_rejects_stale () =
  let recording = mk_recording 5_000 in
  with_tmp ".ckpt" (fun ck ->
      let sweep = Memsim.Sweep.create grid_configs in
      Memsim.Sweep.save_checkpoint sweep ~events:5_000 ~cursor:1_000 ck;
      (* a recording of a different length *)
      (match Memsim.Sweep.load_checkpoint sweep ~events:4_999 ck with
       | exception Failure _ -> ()
       | _ -> Alcotest.fail "expected Failure for a stale checkpoint");
      (* a sweep with a different grid *)
      let other =
        Memsim.Sweep.create
          (Memsim.Sweep.grid ~cache_sizes:[ 8192 ] ~block_sizes:[ 32 ] ())
      in
      (match Memsim.Sweep.load_checkpoint other ~events:5_000 ck with
       | exception Failure _ -> ()
       | _ -> Alcotest.fail "expected Failure for a foreign grid");
      (* not a checkpoint at all *)
      let oc = open_out ck in
      output_string oc "junk";
      close_out oc;
      match
        Memsim.Sweep.run_resumable ~checkpoint:ck sweep recording
      with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "expected Failure for a corrupt checkpoint")

(* --- Resilient trace I/O ------------------------------------------------- *)

let plan faults ~attempt =
  List.nth_opt faults (attempt - 1) |> Option.join

let test_resilient_clean_save_load () =
  let rec_ = mk_recording 3_000 in
  with_tmp ".trace" (fun path ->
      let saved = Golden.Resilient.save rec_ path in
      Alcotest.(check bool) "save ok" true (Golden.Resilient.ok saved);
      Alcotest.(check int) "one attempt" 1 saved.Golden.Resilient.attempts;
      let loaded = Golden.Resilient.load path in
      Alcotest.(check bool) "load ok" true (Golden.Resilient.ok loaded);
      Alcotest.(check bool) "roundtrip" true
        (Memsim.Recording.equal rec_
           (Option.get loaded.Golden.Resilient.result)))

let test_resilient_retries_transient () =
  let rec_ = mk_recording 1_000 in
  with_tmp ".trace" (fun path ->
      let inject =
        plan [ Some (Golden.Resilient.Transient "flaky disk"); None ]
      in
      let o = Golden.Resilient.save ~inject rec_ path in
      Alcotest.(check bool) "recovered" true (Golden.Resilient.ok o);
      Alcotest.(check int) "two attempts" 2 o.Golden.Resilient.attempts;
      Alcotest.(check bool) "warning retained" true
        (List.exists
           (fun f -> f.Check.Finding.rule = "golden.io.transient")
           o.Golden.Resilient.findings);
      Alcotest.(check bool) "file is good" true
        (Memsim.Recording.equal rec_ (Memsim.Recording.load path)))

let test_resilient_survives_damage () =
  let rec_ = mk_recording 1_000 in
  List.iter
    (fun (label, fault, rule) ->
      with_tmp ".trace" (fun path ->
          let o = Golden.Resilient.save ~inject:(plan [ Some fault; None ]) rec_ path in
          Alcotest.(check bool) (label ^ ": recovered") true
            (Golden.Resilient.ok o);
          Alcotest.(check bool) (label ^ ": diagnosed") true
            (List.exists (fun f -> f.Check.Finding.rule = rule)
               o.Golden.Resilient.findings);
          Alcotest.(check bool) (label ^ ": file is good") true
            (Memsim.Recording.equal rec_ (Memsim.Recording.load path))))
    [ ("enospc", Golden.Resilient.Enospc_at 100, "golden.io.enospc");
      ("short write", Golden.Resilient.Short_write_at 64, "golden.io.verify");
      ("bit rot", Golden.Resilient.Corrupt_byte_at 40, "golden.io.verify")
    ]

let test_resilient_never_tears_destination () =
  let old_rec = mk_recording 500 in
  let new_rec = mk_recording 2_000 in
  with_tmp ".trace" (fun path ->
      Memsim.Recording.save old_rec path;
      (* every attempt dies: the previous file must survive intact *)
      let inject ~attempt:_ = Some (Golden.Resilient.Corrupt_byte_at 16) in
      let o = Golden.Resilient.save ~attempts:3 ~inject new_rec path in
      Alcotest.(check bool) "save failed" false (Golden.Resilient.ok o);
      Alcotest.(check int) "all attempts consumed" 3 o.Golden.Resilient.attempts;
      Alcotest.(check bool) "exhaustion reported" true
        (List.exists
           (fun f -> f.Check.Finding.rule = "golden.io.exhausted")
           o.Golden.Resilient.findings);
      Alcotest.(check bool) "destination untouched" true
        (Memsim.Recording.equal old_rec (Memsim.Recording.load path)))

let test_resilient_load_retries_transient () =
  let rec_ = mk_recording 800 in
  with_tmp ".trace" (fun path ->
      Memsim.Recording.save rec_ path;
      let inject =
        plan
          [ Some (Golden.Resilient.Transient "cable wiggle");
            Some (Golden.Resilient.Transient "again");
            None
          ]
      in
      let o = Golden.Resilient.load ~inject path in
      Alcotest.(check bool) "recovered" true (Golden.Resilient.ok o);
      Alcotest.(check int) "three attempts" 3 o.Golden.Resilient.attempts;
      Alcotest.(check bool) "roundtrip" true
        (Memsim.Recording.equal rec_ (Option.get o.Golden.Resilient.result)))

let test_resilient_partial_recovery () =
  let rec_ = mk_recording 2_000 in
  with_tmp ".trace" (fun path ->
      Memsim.Recording.save ~format:Memsim.Recording.V1 rec_ path;
      (* cut the file mid-event: a deterministic structural fault *)
      let full = (Unix.stat path).Unix.st_size in
      Unix.truncate path (full - 13);
      let o = Golden.Resilient.load path in
      Alcotest.(check bool) "reported as a failure" false
        (Golden.Resilient.ok o);
      Alcotest.(check bool) "partial flagged" true
        (List.exists
           (fun f -> f.Check.Finding.rule = "golden.io.partial")
           o.Golden.Resilient.findings);
      match o.Golden.Resilient.result with
      | None -> Alcotest.fail "expected a recovered prefix"
      | Some partial ->
        let n = Memsim.Recording.length partial in
        Alcotest.(check bool) "a proper non-empty prefix" true
          (n > 0 && n < 2_000);
        for i = 0 to n - 1 do
          if Memsim.Recording.event partial i <> Memsim.Recording.event rec_ i
          then Alcotest.failf "prefix diverges at event %d" i
        done;
      (* without the fallback the same file is a hard error *)
      let strict = Golden.Resilient.load ~allow_partial:false path in
      Alcotest.(check bool) "strict load fails" false
        (Golden.Resilient.ok strict);
      Alcotest.(check bool) "strict load yields nothing" true
        (strict.Golden.Resilient.result = None))

(* --- Suite plumbing ------------------------------------------------------ *)

let test_suite_record_verify_cycle () =
  let dir = tmp_file "" in
  let tiny =
    { Golden.Manifest.version = Golden.Manifest.current_version;
      runs = [ { smoke_run with Golden.Manifest.name = "tiny" } ]
    }
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () ->
      let null = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()) in
      Golden.Suite.record ~manifest:tiny ~dir null;
      let vs = Golden.Suite.verify ~dir null in
      Alcotest.(check int) "one run verified" 1 (List.length vs);
      Alcotest.(check bool) "clean against itself" true
        (List.for_all Golden.Suite.passed vs);
      (* perturb the committed fixture: verify must fail and say where *)
      let path = Golden.Suite.fixture_path ~dir "tiny" in
      let fx = Golden.Fixture.load path in
      Golden.Fixture.save
        { fx with Golden.Fixture.trace_events = fx.trace_events + 1 }
        path;
      let vs = Golden.Suite.verify ~dir null in
      Alcotest.(check bool) "perturbation caught" true
        (List.exists (fun v -> not (Golden.Suite.passed v)) vs);
      let findings = List.concat_map (fun v -> v.Golden.Suite.findings) vs in
      Alcotest.(check bool) "located to the count" true
        (List.exists (fun f -> f.Check.Finding.rule = "golden.count") findings))

let () =
  Alcotest.run "golden"
    [ ( "manifest",
        [ Alcotest.test_case "roundtrip" `Quick test_manifest_roundtrip;
          Alcotest.test_case "bad version rejected" `Quick
            test_manifest_rejects_bad_version;
          Alcotest.test_case "garbage rejected" `Quick
            test_manifest_rejects_garbage
        ] );
      ( "fixture",
        [ Alcotest.test_case "roundtrip" `Quick test_fixture_roundtrip;
          Alcotest.test_case "self-compare is clean" `Quick
            test_compare_self_clean;
          Alcotest.test_case "count perturbation located" `Quick
            test_compare_localizes_count;
          Alcotest.test_case "cache counter perturbation located" `Quick
            test_compare_localizes_cache_counter;
          Alcotest.test_case "ratio tolerance band" `Quick
            test_compare_ratio_band;
          Alcotest.test_case "grid mismatch located" `Quick
            test_compare_grid_mismatch;
          Alcotest.test_case "manifest drift located" `Quick
            test_compare_run_drift
        ] );
      ( "checkpoint",
        [ Alcotest.test_case "kill-and-resume = uninterrupted" `Quick
            test_resume_equals_uninterrupted;
          Alcotest.test_case "uninterrupted and idempotent" `Quick
            test_resume_without_interruption;
          Alcotest.test_case "stale/foreign checkpoints rejected" `Quick
            test_checkpoint_rejects_stale
        ] );
      ( "resilient",
        [ Alcotest.test_case "clean save/load" `Quick
            test_resilient_clean_save_load;
          Alcotest.test_case "transient save fault retried" `Quick
            test_resilient_retries_transient;
          Alcotest.test_case "enospc/short-write/bit-rot survived" `Quick
            test_resilient_survives_damage;
          Alcotest.test_case "destination never torn" `Quick
            test_resilient_never_tears_destination;
          Alcotest.test_case "transient load fault retried" `Quick
            test_resilient_load_retries_transient;
          Alcotest.test_case "partial recovery of a damaged file" `Quick
            test_resilient_partial_recovery
        ] );
      ( "suite",
        [ Alcotest.test_case "record/verify/perturb cycle" `Quick
            test_suite_record_verify_cycle
        ] )
    ]
