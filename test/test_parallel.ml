(* Differential tests for the domain-parallel sweep engine: on a real
   recorded trace of every workload, the parallel engines must produce
   statistics bit-identical to the serial per-event oracle — every
   counter, including the per-phase splits.  `make check` runs this
   binary under REPRO_JOBS=2 as well, which exercises the same
   assertions through Runner.sweep_recording's jobs selection. *)

let grid () =
  Memsim.Sweep.create
    (Memsim.Sweep.grid
       ~cache_sizes:[ Memsim.Sweep.kb 32; Memsim.Sweep.kb 256 ]
       ~block_sizes:[ 32; 128 ] ())

let check_identical name reference candidate =
  List.iter2
    (fun (_, (a : Memsim.Cache.stats)) (_, (b : Memsim.Cache.stats)) ->
      Alcotest.(check bool) (name ^ ": stats bit-identical") true (a = b))
    (Memsim.Sweep.results reference)
    (Memsim.Sweep.results candidate)

let test_workload w () =
  let _, recording = Core.Runner.record ~scale:1 w in
  (* per-event oracle *)
  let oracle = grid () in
  Memsim.Recording.replay recording (Memsim.Sweep.sink oracle);
  (* serial chunked engine *)
  let serial = grid () in
  Memsim.Sweep.run_serial serial recording;
  check_identical "serial chunked" oracle serial;
  (* parallel replay at the satellite's jobs=4, and at REPRO_JOBS /
     --jobs when the harness sets one *)
  let jobs_list =
    let j = Core.Runner.jobs () in
    if j > 1 && j <> 4 then [ 4; j ] else [ 4 ]
  in
  List.iter
    (fun jobs ->
      let parallel = grid () in
      Memsim.Sweep.run_parallel ~jobs parallel recording;
      check_identical (Printf.sprintf "run_parallel jobs=%d" jobs) oracle
        parallel)
    jobs_list;
  (* live consumption on worker domains while the trace streams *)
  let live = grid () in
  let sink, finish =
    Memsim.Sweep.live_parallel ~jobs:3 ~chunk_events:4096 live
  in
  Memsim.Recording.replay recording sink;
  finish ();
  check_identical "live_parallel jobs=3" oracle live

let test_runner_path () =
  (* Runner.sweep_recording must route through the same engines and
     give the same stats whatever jobs setting is in force. *)
  let w = Workloads.Workload.nbody in
  let _, recording = Core.Runner.record ~scale:1 w in
  let oracle = grid () in
  Memsim.Recording.replay recording (Memsim.Sweep.sink oracle);
  List.iter
    (fun jobs ->
      Core.Runner.set_jobs jobs;
      let sw = grid () in
      Core.Runner.sweep_recording ~label:"test.sweep" sw recording;
      check_identical
        (Printf.sprintf "sweep_recording jobs=%d" jobs)
        oracle sw)
    [ 1; 2 ];
  Core.Runner.set_jobs 1

let () =
  Alcotest.run "parallel sweeps"
    [ ( "differential",
        List.map
          (fun w ->
            Alcotest.test_case w.Workloads.Workload.name `Slow
              (test_workload w))
          Workloads.Workload.all );
      ( "runner",
        [ Alcotest.test_case "sweep_recording honors jobs" `Slow
            test_runner_path
        ] )
    ]
