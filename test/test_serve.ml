(* The serve daemon's moving parts, without sockets:

   - manifest content hashing is canonical (field order, whitespace
     and label/provenance fields cannot move it; every
     number-determining field does), and the committed smoke-suite
     hashes are pinned;
   - the scheduler serves repeat submissions from the result cache and
     piggybacks in-flight duplicates, asserted by its counters;
   - the kill-and-resume differential proof: a job whose worker dies
     mid-sweep resumes from its checkpoint and finishes bit-identical
     to an uninterrupted measurement, with one worker and with a
     stealing pool;
   - malformed manifests are structured errors, never crashes, and
     execution failures carry the job id and manifest name;
   - journal recovery re-enqueues what a killed daemon left behind
     (skipping the torn final line) and continues the id sequence;
   - the wire protocol round-trips and rejects oversized or garbage
     frames;
   - Serve_check accepts a healthy spool and localizes corrupt
     journals, impossible event orders and store-layout violations. *)

let tmp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let path =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "test_serve_%d_%d" (Unix.getpid ()) !n)
    in
    path

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Unix.unlink path

let with_spool f =
  let dir = tmp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0

let base_run =
  match Golden.Manifest.(find default "selfcomp") with
  | Some r -> r
  | None -> assert false

(* A one-config grid over the smallest smoke workload: cheap enough to
   sweep many times in this file, with enough events (~800k) that a
   50k-event checkpoint cadence yields several epochs to kill inside. *)
let small_run ?(name = "small") ?(cache = 65536) ?(block = 32) () =
  { base_run with
    Golden.Manifest.name;
    cache_sizes = [ cache ];
    block_sizes = [ block ];
    jobs = 1
  }

let run_text r = Sexp.Datum.to_string (Golden.Manifest.run_to_datum r)

let findings_errors fs = List.length (Check.Finding.errors fs)

let has_rule rule fs =
  List.exists (fun f -> f.Check.Finding.rule = rule) fs

(* --- Content hashing ----------------------------------------------------- *)

let test_hash_canonical () =
  let r = small_run () in
  let h = Golden.Manifest.content_hash r in
  (* The same logical run, written with scrambled field order and
     whitespace, parses to the same hash. *)
  let scrambled =
    Printf.sprintf
      "(run   (format \"v2\")\n  (policy \"write-validate\")\n\
      \  (block-sizes 32) (cache-sizes 65536)\n\
      \  (gc \"cheney:48k\") (scale 1) (workload \"selfcomp\") (jobs 1)\n\
      \  (name \"small\"))"
  in
  let r2 =
    Golden.Manifest.run_of_datum ~file:"<test>"
      (Sexp.Parser.parse_one scrambled)
  in
  Alcotest.(check string) "field order and whitespace are invisible" h
    (Golden.Manifest.content_hash r2)

let test_hash_ignores_label_fields () =
  let r = small_run () in
  let h = Golden.Manifest.content_hash r in
  Alcotest.(check string) "name is a label" h
    (Golden.Manifest.content_hash { r with Golden.Manifest.name = "other" });
  Alcotest.(check string) "jobs is provenance" h
    (Golden.Manifest.content_hash { r with Golden.Manifest.jobs = 7 })

let test_hash_sensitive_to_content () =
  let r = small_run () in
  let h = Golden.Manifest.content_hash r in
  let variants =
    [ ("workload", { r with Golden.Manifest.workload = "prover" });
      ("scale", { r with Golden.Manifest.scale = 2 });
      ("gc", { r with Golden.Manifest.gc = Vscheme.Machine.No_gc });
      ("heap", { r with Golden.Manifest.heap_bytes = Some (1 lsl 24) });
      ("cache-sizes", { r with Golden.Manifest.cache_sizes = [ 131072 ] });
      ("block-sizes", { r with Golden.Manifest.block_sizes = [ 64 ] });
      ( "policy",
        { r with
          Golden.Manifest.write_miss_policy = Memsim.Cache.Fetch_on_write
        } );
      ("format", { r with Golden.Manifest.trace_format = Memsim.Recording.V3 })
    ]
  in
  let hashes =
    List.map
      (fun (field, v) ->
        let hv = Golden.Manifest.content_hash v in
        Alcotest.(check bool)
          (Printf.sprintf "perturbing %s moves the hash" field)
          true (hv <> h);
        hv)
      variants
  in
  let distinct = List.sort_uniq String.compare (h :: hashes) in
  Alcotest.(check int) "all perturbations distinct"
    (List.length hashes + 1)
    (List.length distinct)

(* Pinned hashes of the committed smoke suite: if one of these moves,
   every cached result keyed by it is orphaned — regenerating the
   stores must be a deliberate act, like regenerating fixtures. *)
let test_hash_pinned () =
  let pinned =
    [ ("selfcomp", "204b6bb6e131928e510bf00999af16ae");
      ("prover", "c4d91b27ad507cce4533757cb4734136");
      ("lred", "2804bff46333f7820648336eb7d00206");
      ("nbody", "860c20d24943158a1e5e00ea1ba02f51");
      ("mexpr", "bb54fa790e76bfe46970289069ac5529");
      ("nbody-nogc", "72aaa944cf3ac42b16dfd51daf1d3cc2");
      ("nbody-cfl-hier", "b34d6b340c92596ec8f7e7b4026e61f3")
    ]
  in
  List.iter
    (fun (r : Golden.Manifest.run) ->
      match List.assoc_opt r.Golden.Manifest.name pinned with
      | Some h ->
        Alcotest.(check string)
          (r.Golden.Manifest.name ^ " hash pinned")
          h
          (Golden.Manifest.content_hash r)
      | None ->
        Alcotest.fail
          ("unpinned run in the default manifest: " ^ r.Golden.Manifest.name))
    Golden.Manifest.default.Golden.Manifest.runs

(* --- Scheduler: cache and dedup ------------------------------------------ *)

let quiet_config workers =
  { Serve.Sched.default_config with Serve.Sched.workers }

let submit_ok sched r =
  match Serve.Sched.submit sched (run_text r) with
  | Ok id -> id
  | Error msg -> Alcotest.fail ("submit failed: " ^ msg)

let test_repeat_submission_cached () =
  with_spool (fun dir ->
      let sched = Serve.Sched.create ~config:(quiet_config 1) dir in
      let r = small_run () in
      let id1 = submit_ok sched r in
      Serve.Sched.drain sched;
      let id2 = submit_ok sched r in
      Serve.Sched.drain sched;
      Alcotest.(check int) "ids distinct" (id1 + 1) id2;
      Alcotest.(check int) "both completed" 2
        (Serve.Sched.counter_value sched "completed");
      Alcotest.(check int) "exactly one cache hit" 1
        (Serve.Sched.counter_value sched "cache_hits");
      (match Serve.Sched.job_json sched id2 with
       | Ok json ->
         Alcotest.(check bool) "second job marked cached" true
           (Obs.Json.member "cached" json = Some (Obs.Json.Bool true))
       | Error msg -> Alcotest.fail msg);
      Serve.Sched.shutdown sched)

let test_inflight_duplicate_piggybacks () =
  with_spool (fun dir ->
      (* The hold hook slows the leader's sweep so the duplicate is
         submitted while it is still running. *)
      let config =
        { (quiet_config 1) with
          Serve.Sched.kill =
            Some
              (fun _ _ ->
                Unix.sleepf 0.01;
                false)
        }
      in
      let sched = Serve.Sched.create ~config dir in
      let r = small_run () in
      let _id1 = submit_ok sched r in
      let id2 = submit_ok sched r in
      Serve.Sched.drain sched;
      Alcotest.(check int) "both completed" 2
        (Serve.Sched.counter_value sched "completed");
      Alcotest.(check int) "duplicate answered without a second sweep" 1
        (Serve.Sched.counter_value sched "cache_hits");
      (match Serve.Sched.job_json sched id2 with
       | Ok json ->
         Alcotest.(check bool) "follower marked cached" true
           (Obs.Json.member "cached" json = Some (Obs.Json.Bool true))
       | Error msg -> Alcotest.fail msg);
      Serve.Sched.shutdown sched)

(* --- Scheduler: kill and resume ------------------------------------------ *)

(* Kill every job's FIRST attempt once it is past [at] events.  The
   attempt gate keeps the resumed attempt alive even though its
   restored cursor is already past the kill point. *)
let kill_first_attempt_at at =
  Some (fun (j : Serve.Job.t) cursor -> j.Serve.Job.attempts = 1 && cursor >= at)

let assert_stored_matches_fresh sched (r : Golden.Manifest.run) =
  let hash = Golden.Manifest.content_hash r in
  match Serve.Store.lookup (Serve.Sched.store sched) hash with
  | None -> Alcotest.fail ("no stored result for " ^ r.Golden.Manifest.name)
  | Some stored ->
    let fresh = Golden.Fixture.measure r in
    let findings =
      Golden.Fixture.compare ~file:r.Golden.Manifest.name ~expected:fresh
        ~actual:stored ()
    in
    List.iter (fun f -> Format.printf "%a@." Check.Finding.pp f) findings;
    Alcotest.(check int)
      (r.Golden.Manifest.name ^ ": resumed result bit-identical to fresh")
      0
      (findings_errors findings)

let test_kill_resume_serial () =
  with_spool (fun dir ->
      let config =
        { (quiet_config 1) with
          Serve.Sched.checkpoint_every = Some 50_000;
          kill = kill_first_attempt_at 100_000
        }
      in
      let sched = Serve.Sched.create ~config dir in
      let r = small_run () in
      let id = submit_ok sched r in
      Serve.Sched.drain sched;
      Alcotest.(check int) "requeued once" 1
        (Serve.Sched.counter_value sched "requeued");
      Alcotest.(check int) "resumed once" 1
        (Serve.Sched.counter_value sched "resumed");
      (match Serve.Sched.job_json sched id with
       | Ok json ->
         Alcotest.(check bool) "job marked resumed" true
           (Obs.Json.member "resumed" json = Some (Obs.Json.Bool true));
         Alcotest.(check bool) "two attempts" true
           (Obs.Json.member "attempts" json = Some (Obs.Json.Int 2))
       | Error msg -> Alcotest.fail msg);
      assert_stored_matches_fresh sched r;
      Serve.Sched.shutdown sched)

let test_kill_resume_parallel () =
  with_spool (fun dir ->
      let config =
        { (quiet_config 2) with
          Serve.Sched.checkpoint_every = Some 50_000;
          kill = kill_first_attempt_at 100_000
        }
      in
      let sched = Serve.Sched.create ~config dir in
      let runs =
        [ small_run ~name:"a" ~cache:32768 ();
          small_run ~name:"b" ~cache:65536 ();
          small_run ~name:"c" ~cache:131072 ()
        ]
      in
      let _ids = List.map (submit_ok sched) runs in
      Serve.Sched.drain sched;
      Alcotest.(check int) "every job killed once" 3
        (Serve.Sched.counter_value sched "requeued");
      Alcotest.(check int) "every job resumed" 3
        (Serve.Sched.counter_value sched "resumed");
      Alcotest.(check int) "all completed" 3
        (Serve.Sched.counter_value sched "completed");
      List.iter (assert_stored_matches_fresh sched) runs;
      Serve.Sched.shutdown sched)

(* --- Scheduler: errors carry the job --------------------------------------- *)

let test_malformed_submission_is_error () =
  with_spool (fun dir ->
      let sched = Serve.Sched.create ~config:(quiet_config 1) dir in
      (match Serve.Sched.submit sched "(((" with
       | Ok _ -> Alcotest.fail "unterminated sexp accepted"
       | Error msg ->
         Alcotest.(check bool) "parse error is structured" true
           (contains msg "parse" || contains msg "lex"));
      (match Serve.Sched.submit sched "(run (name \"x\"))" with
       | Ok _ -> Alcotest.fail "field-less run accepted"
       | Error msg ->
         Alcotest.(check bool) "missing-field error names the field" true
           (contains msg "workload" || contains msg "missing"));
      (* The scheduler survives: a good job still completes. *)
      let id = submit_ok sched (small_run ()) in
      (match Serve.Sched.wait sched id with
       | Ok json ->
         Alcotest.(check bool) "good job done after bad submissions" true
           (Obs.Json.member "state" json = Some (Obs.Json.Str "done"))
       | Error msg -> Alcotest.fail msg);
      Serve.Sched.shutdown sched)

let test_failure_names_job () =
  with_spool (fun dir ->
      let sched = Serve.Sched.create ~config:(quiet_config 1) dir in
      let r = { (small_run ~name:"ghost" ()) with Golden.Manifest.workload = "nosuch" } in
      let id = submit_ok sched r in
      (match Serve.Sched.wait sched id with
       | Ok json ->
         Alcotest.(check bool) "state is failed" true
           (Obs.Json.member "state" json = Some (Obs.Json.Str "failed"));
         (match Obs.Json.member "error" json with
          | Some (Obs.Json.Str msg) ->
            Alcotest.(check bool) "error carries the job id" true
              (contains msg (Printf.sprintf "job %d" id));
            Alcotest.(check bool) "error carries the manifest name" true
              (contains msg "ghost")
          | Some _ | None -> Alcotest.fail "failed job without an error field")
       | Error msg -> Alcotest.fail msg);
      Serve.Sched.shutdown sched)

(* --- Journal recovery ----------------------------------------------------- *)

let write_journal dir events_and_garbage =
  Unix.mkdir dir 0o755;
  let oc = open_out (Filename.concat dir "journal.jsonl") in
  List.iter
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    events_and_garbage;
  close_out oc

let ev fields = Obs.Json.to_string (Obs.Json.Obj fields)

let submitted_event ~id ~t r =
  ev
    [ ("ev", Obs.Json.Str "submitted");
      ("t", Obs.Json.Float t);
      ("job", Obs.Json.Int id);
      ("name", Obs.Json.Str r.Golden.Manifest.name);
      ("hash", Obs.Json.Str (Golden.Manifest.content_hash r));
      ("run", Obs.Json.Str (run_text r))
    ]

let test_journal_recovery () =
  with_spool (fun dir ->
      let a = small_run ~name:"a" ~cache:32768 () in
      let b = small_run ~name:"b" ~cache:65536 () in
      write_journal dir
        [ submitted_event ~id:1 ~t:1.0 a;
          submitted_event ~id:2 ~t:2.0 b;
          ev
            [ ("ev", Obs.Json.Str "started");
              ("t", Obs.Json.Float 3.0);
              ("job", Obs.Json.Int 1);
              ("worker", Obs.Json.Int 0);
              ("attempt", Obs.Json.Int 1);
              ("resumed", Obs.Json.Bool false)
            ];
          "{\"ev\":\"done\",\"t\":4.0,\"jo" (* torn tail of a SIGKILL *)
        ];
      let sched = Serve.Sched.create ~config:(quiet_config 2) dir in
      Serve.Sched.drain sched;
      Alcotest.(check int) "both recovered jobs completed" 2
        (Serve.Sched.counter_value sched "completed");
      (match Serve.Sched.job_json sched 1 with
       | Ok json ->
         Alcotest.(check bool) "job 1 done" true
           (Obs.Json.member "state" json = Some (Obs.Json.Str "done"))
       | Error msg -> Alcotest.fail msg);
      (* The id sequence continues above the journal's maximum. *)
      let id3 = submit_ok sched (small_run ~name:"c" ~cache:131072 ()) in
      Alcotest.(check int) "next id continues from the journal" 3 id3;
      Serve.Sched.drain sched;
      List.iter
        (fun r ->
          Alcotest.(check bool)
            (r.Golden.Manifest.name ^ " result stored")
            true
            (Serve.Store.lookup (Serve.Sched.store sched)
               (Golden.Manifest.content_hash r)
             <> None))
        [ a; b ];
      Serve.Sched.shutdown sched)

(* --- Wire protocol -------------------------------------------------------- *)

let test_proto_roundtrip () =
  List.iter
    (fun req ->
      match Serve.Proto.(request_of_json (request_to_json req)) with
      | Ok back ->
        Alcotest.(check bool) "request round-trips" true (back = req)
      | Error msg -> Alcotest.fail msg)
    [ Serve.Proto.Submit { run_text = "(run (name \"x\"))"; wait = true };
      Serve.Proto.Status 7;
      Serve.Proto.Result 7;
      Serve.Proto.Cancel 7;
      Serve.Proto.Stats;
      Serve.Proto.Subscribe;
      Serve.Proto.Shutdown { drain = false };
      Serve.Proto.Ping
    ]

let test_proto_rejects_garbage () =
  (match Serve.Proto.request_of_json (Obs.Json.Obj []) with
   | Ok _ -> Alcotest.fail "op-less request accepted"
   | Error msg -> Alcotest.(check bool) "names op" true (contains msg "op"));
  match
    Serve.Proto.request_of_json
      (Obs.Json.Obj [ ("op", Obs.Json.Str "launch-missiles") ])
  with
  | Ok _ -> Alcotest.fail "unknown op accepted"
  | Error msg ->
    Alcotest.(check bool) "names the op" true (contains msg "launch-missiles")

let test_proto_frames () =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () ->
      let msg = Obs.Json.Obj [ ("hello", Obs.Json.Int 42) ] in
      Serve.Proto.write_frame w msg;
      (match Serve.Proto.read_frame r with
       | Ok back -> Alcotest.(check bool) "frame round-trips" true (back = msg)
       | Error _ -> Alcotest.fail "readable frame rejected");
      (* A length header past the cap is rejected without allocating. *)
      let hdr = Bytes.create 4 in
      Bytes.set_int32_be hdr 0 0x7fffffffl;
      ignore (Unix.write w hdr 0 4);
      (match Serve.Proto.read_frame r with
       | Error (`Error msg) ->
         Alcotest.(check bool) "oversized length named" true
           (contains msg "length")
       | Ok _ | Error `Closed -> Alcotest.fail "oversized frame accepted");
      (* Garbage payload of a valid length is a parse error. *)
      Bytes.set_int32_be hdr 0 3l;
      ignore (Unix.write w hdr 0 4);
      ignore (Unix.write w (Bytes.of_string "%%%") 0 3);
      (match Serve.Proto.read_frame r with
       | Error (`Error msg) ->
         Alcotest.(check bool) "unparseable payload named" true
           (contains msg "unparseable")
       | Ok _ | Error `Closed -> Alcotest.fail "garbage payload accepted");
      (* Clean EOF is `Closed, not an error. *)
      Unix.close w;
      match Serve.Proto.read_frame r with
      | Error `Closed -> ()
      | Ok _ | Error (`Error _) -> Alcotest.fail "EOF not reported as Closed")

(* --- Serve_check ----------------------------------------------------------- *)

let test_serve_check_healthy_spool () =
  with_spool (fun dir ->
      let sched = Serve.Sched.create ~config:(quiet_config 1) dir in
      let r = small_run () in
      let _ = submit_ok sched r in
      let _ = submit_ok sched r in
      Serve.Sched.drain sched;
      Serve.Sched.shutdown sched;
      let result = Check.Serve_check.scan dir in
      List.iter
        (fun f -> Format.printf "%a@." Check.Finding.pp f)
        result.Check.Serve_check.findings;
      Alcotest.(check int) "no findings on a healthy spool" 0
        (List.length result.Check.Serve_check.findings);
      Alcotest.(check int) "two jobs" 2 result.Check.Serve_check.jobs;
      Alcotest.(check int) "one stored result" 1
        result.Check.Serve_check.results;
      Alcotest.(check int) "nothing dangling" 0
        result.Check.Serve_check.dangling)

let test_serve_check_corrupt_journal () =
  with_spool (fun dir ->
      let a = small_run () in
      write_journal dir
        [ submitted_event ~id:1 ~t:1.0 a;
          "this is not json";
          submitted_event ~id:1 ~t:2.0 a;  (* submitted twice *)
          ev
            [ ("ev", Obs.Json.Str "done");
              ("t", Obs.Json.Float 3.0);
              ("job", Obs.Json.Int 9);  (* done before any submitted *)
              ("cached", Obs.Json.Bool false)
            ];
          "{\"torn" (* final line: only a warning *)
        ];
      let result = Check.Serve_check.scan dir in
      let fs = result.Check.Serve_check.findings in
      Alcotest.(check bool) "mid-file garbage is an error" true
        (has_rule "serve.journal.json" fs);
      Alcotest.(check bool) "impossible order located" true
        (has_rule "serve.journal.order" fs);
      Alcotest.(check bool) "torn final line only warns" true
        (List.exists
           (fun f ->
             f.Check.Finding.rule = "serve.journal.torn"
             && not (Check.Finding.is_error f))
           fs);
      Alcotest.(check bool) "dangling job warned" true
        (has_rule "serve.journal.dangling" fs))

let test_serve_check_store_layout () =
  with_spool (fun dir ->
      let a = small_run () in
      write_journal dir
        [ submitted_event ~id:1 ~t:1.0 a;
          ev
            [ ("ev", Obs.Json.Str "done");
              ("t", Obs.Json.Float 2.0);
              ("job", Obs.Json.Int 1);
              ("cached", Obs.Json.Bool false)
            ]
        ];
      Unix.mkdir (Filename.concat dir "results") 0o755;
      Unix.mkdir (Filename.concat dir "ckpt") 0o755;
      let touch path = close_out (open_out path) in
      touch (Filename.concat dir "results/not-a-hash.sexp");
      touch (Filename.concat dir "ckpt/job-1.ckpt");  (* orphan, and empty *)
      touch (Filename.concat dir "ckpt/stray.bin");
      let result = Check.Serve_check.scan dir in
      let fs = result.Check.Serve_check.findings in
      Alcotest.(check bool) "bad result name is an error" true
        (has_rule "serve.result.name" fs);
      Alcotest.(check bool) "stray checkpoint file is an error" true
        (has_rule "serve.ckpt.name" fs);
      Alcotest.(check bool) "orphan checkpoint warned" true
        (List.exists
           (fun f ->
             f.Check.Finding.rule = "serve.ckpt.orphan"
             && not (Check.Finding.is_error f))
           fs);
      (* The empty job-1.ckpt also fails the checkpoint body scan. *)
      Alcotest.(check bool) "checkpoint body scanned" true
        (List.exists
           (fun f ->
             String.length f.Check.Finding.rule >= 5
             && String.sub f.Check.Finding.rule 0 5 = "ckpt.")
           fs))

let () =
  Alcotest.run "serve"
    [ ( "hash",
        [ Alcotest.test_case "canonical under reformatting" `Quick
            test_hash_canonical;
          Alcotest.test_case "name and jobs excluded" `Quick
            test_hash_ignores_label_fields;
          Alcotest.test_case "every content field moves it" `Quick
            test_hash_sensitive_to_content;
          Alcotest.test_case "committed smoke hashes pinned" `Quick
            test_hash_pinned
        ] );
      ( "cache",
        [ Alcotest.test_case "repeat submission served from cache" `Quick
            test_repeat_submission_cached;
          Alcotest.test_case "in-flight duplicate piggybacks" `Quick
            test_inflight_duplicate_piggybacks
        ] );
      ( "resume",
        [ Alcotest.test_case "kill and resume = uninterrupted (serial)" `Quick
            test_kill_resume_serial;
          Alcotest.test_case "kill and resume = uninterrupted (pool)" `Quick
            test_kill_resume_parallel
        ] );
      ( "errors",
        [ Alcotest.test_case "malformed manifest is a structured error" `Quick
            test_malformed_submission_is_error;
          Alcotest.test_case "failures carry job id and name" `Quick
            test_failure_names_job
        ] );
      ( "recovery",
        [ Alcotest.test_case "journal recovery resumes the spool" `Quick
            test_journal_recovery
        ] );
      ( "proto",
        [ Alcotest.test_case "requests round-trip" `Quick test_proto_roundtrip;
          Alcotest.test_case "garbage requests rejected" `Quick
            test_proto_rejects_garbage;
          Alcotest.test_case "framing rejects oversize and garbage" `Quick
            test_proto_frames
        ] );
      ( "spool-check",
        [ Alcotest.test_case "healthy spool is clean" `Quick
            test_serve_check_healthy_spool;
          Alcotest.test_case "corrupt journal localized" `Quick
            test_serve_check_corrupt_journal;
          Alcotest.test_case "store layout violations localized" `Quick
            test_serve_check_store_layout
        ] )
    ]
