(* Cache and timing-model tests. *)

let mutator = Memsim.Trace.Mutator
let collector = Memsim.Trace.Collector

let mk ?(policy = Memsim.Cache.Write_validate) ?(size = 1024) ?(block = 64)
    ?(block_stats = false) () =
  Memsim.Cache.create
    (Memsim.Cache.config ~write_miss_policy:policy
       ~record_block_stats:block_stats ~size_bytes:size ~block_bytes:block ())

let stats = Memsim.Cache.stats

(* --- Timing ---------------------------------------------------------- *)

let test_penalties () =
  (* 30 + 180 + 30 * ceil(n/16) ns *)
  List.iter
    (fun (block, slow, fast) ->
      Alcotest.(check int)
        (Printf.sprintf "slow %db" block)
        slow
        (Memsim.Timing.miss_penalty_cycles Memsim.Timing.Slow ~block_bytes:block);
      Alcotest.(check int)
        (Printf.sprintf "fast %db" block)
        fast
        (Memsim.Timing.miss_penalty_cycles Memsim.Timing.Fast ~block_bytes:block))
    [ (16, 8, 120); (32, 9, 135); (64, 11, 165); (128, 15, 225); (256, 23, 345) ]

let test_overhead_math () =
  (* O_cache = M * P / I *)
  let o =
    Memsim.Timing.cache_overhead Memsim.Timing.Slow ~block_bytes:16
      ~fetches:1000 ~instructions:160000
  in
  Alcotest.(check (float 1e-9)) "cache overhead" 0.05 o;
  (* O_gc can be negative when the collector removes program misses *)
  let gc =
    Memsim.Timing.gc_overhead Memsim.Timing.Slow ~block_bytes:16
      ~collector_fetches:0 ~program_fetch_delta:(-1000)
      ~collector_instructions:0 ~program_instruction_delta:0
      ~program_instructions:160000
  in
  Alcotest.(check (float 1e-9)) "negative O_gc" (-0.05) gc

(* --- Basic cache behaviour ------------------------------------------- *)

let test_read_miss_then_hit () =
  let c = mk () in
  Memsim.Cache.access c 0 Memsim.Trace.Read mutator;
  Memsim.Cache.access c 0 Memsim.Trace.Read mutator;
  Memsim.Cache.access c 4 Memsim.Trace.Read mutator;
  let s = stats c in
  Alcotest.(check int) "refs" 3 s.Memsim.Cache.refs;
  Alcotest.(check int) "one miss" 1 s.Memsim.Cache.misses;
  Alcotest.(check int) "one fetch" 1 s.Memsim.Cache.fetches

let test_direct_mapped_conflict () =
  let c = mk ~size:1024 ~block:64 () in
  (* addresses 0 and 1024 share cache block 0 *)
  Memsim.Cache.access c 0 Memsim.Trace.Read mutator;
  Memsim.Cache.access c 1024 Memsim.Trace.Read mutator;
  Memsim.Cache.access c 0 Memsim.Trace.Read mutator;
  let s = stats c in
  Alcotest.(check int) "three misses" 3 s.Memsim.Cache.misses;
  (* non-conflicting address in another set *)
  Memsim.Cache.access c 64 Memsim.Trace.Read mutator;
  Memsim.Cache.access c 64 Memsim.Trace.Read mutator;
  Alcotest.(check int) "one more miss" 4 (stats c).Memsim.Cache.misses

let test_write_validate_no_fetch () =
  let c = mk ~policy:Memsim.Cache.Write_validate () in
  Memsim.Cache.access c 0 Memsim.Trace.Alloc_write mutator;
  Memsim.Cache.access c 4 Memsim.Trace.Alloc_write mutator;
  let s = stats c in
  Alcotest.(check int) "one miss (tag install)" 1 s.Memsim.Cache.misses;
  Alcotest.(check int) "alloc miss" 1 s.Memsim.Cache.alloc_misses;
  Alcotest.(check int) "no fetches" 0 s.Memsim.Cache.fetches;
  (* reading back the written words hits *)
  Memsim.Cache.access c 0 Memsim.Trace.Read mutator;
  Memsim.Cache.access c 4 Memsim.Trace.Read mutator;
  Alcotest.(check int) "still no fetch" 0 (stats c).Memsim.Cache.fetches

let test_write_validate_subblock () =
  let c = mk ~policy:Memsim.Cache.Write_validate () in
  Memsim.Cache.access c 0 Memsim.Trace.Alloc_write mutator;
  (* word 1 of the same block was never written: reading it fetches *)
  Memsim.Cache.access c 8 Memsim.Trace.Read mutator;
  let s = stats c in
  Alcotest.(check int) "read of invalid word misses" 2 s.Memsim.Cache.misses;
  Alcotest.(check int) "and fetches" 1 s.Memsim.Cache.fetches;
  (* after the fetch the whole block is valid *)
  Memsim.Cache.access c 60 Memsim.Trace.Read mutator;
  Alcotest.(check int) "rest of block now valid" 2 (stats c).Memsim.Cache.misses

let test_word63_validates () =
  (* Regression: word 63 of a 256-byte block needs the 64th valid bit. *)
  let c = mk ~size:4096 ~block:256 () in
  Memsim.Cache.access c 252 Memsim.Trace.Write mutator;
  Memsim.Cache.access c 252 Memsim.Trace.Read mutator;
  let s = stats c in
  Alcotest.(check int) "write installs, read hits" 1 s.Memsim.Cache.misses;
  Alcotest.(check int) "no fetch" 0 s.Memsim.Cache.fetches;
  (* and word 32, the low bit of the high mask *)
  Memsim.Cache.access c 128 Memsim.Trace.Write mutator;
  Memsim.Cache.access c 128 Memsim.Trace.Read mutator;
  Alcotest.(check int) "word 32 hits too" 1 (stats c).Memsim.Cache.misses

let test_fetch_on_write () =
  let c = mk ~policy:Memsim.Cache.Fetch_on_write () in
  Memsim.Cache.access c 0 Memsim.Trace.Alloc_write mutator;
  let s = stats c in
  Alcotest.(check int) "write miss fetches" 1 s.Memsim.Cache.fetches;
  (* whole block valid after the fetch *)
  Memsim.Cache.access c 32 Memsim.Trace.Read mutator;
  Alcotest.(check int) "read hits" 1 (stats c).Memsim.Cache.misses

let test_collector_phase () =
  let c = mk ~policy:Memsim.Cache.Write_validate () in
  Memsim.Cache.access c 0 Memsim.Trace.Write collector;
  let s = stats c in
  Alcotest.(check int) "collector refs" 1 s.Memsim.Cache.collector_refs;
  Alcotest.(check int) "no mutator refs" 0 s.Memsim.Cache.refs;
  (* collector writes fetch (fetch-on-write during collection) *)
  Alcotest.(check int) "collector fetch" 1 s.Memsim.Cache.collector_fetches;
  Alcotest.(check int) "collector miss" 1 s.Memsim.Cache.collector_misses

let test_writebacks () =
  let c = mk ~size:1024 ~block:64 () in
  Memsim.Cache.access c 0 Memsim.Trace.Write mutator;
  (* evicting a dirty block writes it back *)
  Memsim.Cache.access c 1024 Memsim.Trace.Read mutator;
  Alcotest.(check int) "one writeback" 1 (stats c).Memsim.Cache.writebacks;
  (* a clean eviction does not *)
  Memsim.Cache.access c 2048 Memsim.Trace.Read mutator;
  Alcotest.(check int) "still one" 1 (stats c).Memsim.Cache.writebacks;
  Alcotest.(check int) "write count" 1 (stats c).Memsim.Cache.writes

let test_per_phase_counters () =
  let c = mk ~size:1024 ~block:64 () in
  (* a mutator store dirties block 0; the collector then evicts it, so
     the writeback is charged to the collector phase *)
  Memsim.Cache.access c 0 Memsim.Trace.Write mutator;
  Memsim.Cache.access c 1024 Memsim.Trace.Read collector;
  let s = stats c in
  Alcotest.(check int) "one writeback" 1 s.Memsim.Cache.writebacks;
  Alcotest.(check int) "charged to collector" 1
    s.Memsim.Cache.collector_writebacks;
  Alcotest.(check int) "mutator store only" 0 s.Memsim.Cache.collector_writes;
  (* collector stores are counted within the write total *)
  Memsim.Cache.access c 2048 Memsim.Trace.Write collector;
  Memsim.Cache.access c 2048 Memsim.Trace.Read collector;
  let s = stats c in
  Alcotest.(check int) "collector write" 1 s.Memsim.Cache.collector_writes;
  Alcotest.(check int) "writes include both phases" 2 s.Memsim.Cache.writes;
  (* hit decompositions *)
  Alcotest.(check int) "mutator hits" 0 (Memsim.Cache.mutator_hits s);
  Alcotest.(check int) "collector hits" 1 (Memsim.Cache.collector_hits s);
  Alcotest.(check int) "phases partition refs" 4
    (s.Memsim.Cache.refs + s.Memsim.Cache.collector_refs)

let test_per_phase_mutator_writeback () =
  let c = mk ~size:1024 ~block:64 () in
  Memsim.Cache.access c 0 Memsim.Trace.Write mutator;
  Memsim.Cache.access c 1024 Memsim.Trace.Read mutator;
  let s = stats c in
  Alcotest.(check int) "mutator eviction writes back" 1
    s.Memsim.Cache.writebacks;
  Alcotest.(check int) "not charged to collector" 0
    s.Memsim.Cache.collector_writebacks

let test_assoc_per_phase () =
  let a =
    Memsim.Assoc.create
      (Memsim.Assoc.config ~size_bytes:1024 ~block_bytes:64 ~ways:2 ())
  in
  (* fill both ways of set 0 with dirty collector stores, then force an
     LRU eviction from the mutator *)
  Memsim.Assoc.access a 0 Memsim.Trace.Write collector;
  Memsim.Assoc.access a 512 Memsim.Trace.Write collector;
  Memsim.Assoc.access a 1024 Memsim.Trace.Write mutator;
  let s = Memsim.Assoc.stats a in
  Alcotest.(check int) "collector writes" 2 s.Memsim.Cache.collector_writes;
  Alcotest.(check int) "writes total" 3 s.Memsim.Cache.writes;
  Alcotest.(check int) "mutator eviction" 1 s.Memsim.Cache.writebacks;
  Alcotest.(check int) "writeback charged to mutator" 0
    s.Memsim.Cache.collector_writebacks

let test_alloc_miss_classification () =
  let c = mk () in
  Memsim.Cache.access c 0 Memsim.Trace.Alloc_write mutator;
  Memsim.Cache.access c 1024 Memsim.Trace.Write mutator;
  let s = stats c in
  Alcotest.(check int) "two misses" 2 s.Memsim.Cache.misses;
  Alcotest.(check int) "one alloc miss" 1 s.Memsim.Cache.alloc_misses

let test_block_stats () =
  let c = mk ~block_stats:true () in
  Memsim.Cache.access c 0 Memsim.Trace.Read mutator;
  Memsim.Cache.access c 0 Memsim.Trace.Read mutator;
  Memsim.Cache.access c 64 Memsim.Trace.Alloc_write mutator;
  let refs = Memsim.Cache.block_refs c in
  let misses = Memsim.Cache.block_misses c in
  let allocs = Memsim.Cache.block_alloc_misses c in
  Alcotest.(check int) "block 0 refs" 2 refs.(0);
  Alcotest.(check int) "block 0 misses" 1 misses.(0);
  Alcotest.(check int) "block 1 alloc misses" 1 allocs.(1);
  Alcotest.(check int) "block 1 misses excl alloc" 0 misses.(1)

let test_block_stats_guard () =
  let c = mk () in
  Alcotest.check_raises "requires record_block_stats"
    (Invalid_argument "Cache.block_refs: cache created without record_block_stats")
    (fun () -> ignore (Memsim.Cache.block_refs c))

let test_miss_hook () =
  let c = mk () in
  let seen = ref [] in
  Memsim.Cache.set_miss_hook c (fun ~cache_block ~alloc ->
      seen := (cache_block, alloc) :: !seen);
  Memsim.Cache.access c 0 Memsim.Trace.Alloc_write mutator;
  Memsim.Cache.access c 0 Memsim.Trace.Read mutator;
  Memsim.Cache.access c 64 Memsim.Trace.Read mutator;
  Alcotest.(check (list (pair int bool)))
    "hook calls (newest first)"
    [ (1, false); (0, true) ]
    !seen

let test_reset () =
  let c = mk () in
  Memsim.Cache.access c 0 Memsim.Trace.Read mutator;
  Memsim.Cache.reset_stats c;
  let s = stats c in
  Alcotest.(check int) "refs reset" 0 s.Memsim.Cache.refs;
  Alcotest.(check int) "misses reset" 0 s.Memsim.Cache.misses;
  (* contents kept: the line still hits *)
  Memsim.Cache.access c 0 Memsim.Trace.Read mutator;
  Alcotest.(check int) "hit after reset" 0 (stats c).Memsim.Cache.misses

let test_create_validation () =
  let bad f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  bad (fun () -> mk ~size:1000 ());
  bad (fun () -> mk ~block:48 ());
  bad (fun () -> mk ~size:32 ~block:64 ());
  bad (fun () -> mk ~size:4096 ~block:512 ());
  bad (fun () -> mk ~block:2 ())

(* --- Sweep ------------------------------------------------------------ *)

let test_sweep () =
  let sw =
    Memsim.Sweep.create
      (Memsim.Sweep.grid ~cache_sizes:[ 1024; 2048 ] ~block_sizes:[ 32; 64 ] ())
  in
  Alcotest.(check int) "four caches" 4 (Array.length (Memsim.Sweep.caches sw));
  let sink = Memsim.Sweep.sink sw in
  sink.Memsim.Trace.access 0 Memsim.Trace.Read mutator;
  List.iter
    (fun (_, s) -> Alcotest.(check int) "each saw the ref" 1 s.Memsim.Cache.refs)
    (Memsim.Sweep.results sw);
  let c = Memsim.Sweep.find sw ~size_bytes:2048 ~block_bytes:32 in
  Alcotest.(check int) "find locates" 2048
    (Memsim.Cache.geometry c).Memsim.Cache.size_bytes;
  (match Memsim.Sweep.find sw ~size_bytes:4096 ~block_bytes:32 with
   | exception Failure msg ->
     (* the error names the requested geometry *)
     List.iter
       (fun needle ->
         Alcotest.(check bool)
           (Printf.sprintf "error %S mentions %s" msg needle)
           true
           (let n = String.length needle in
            let rec scan i =
              i + n <= String.length msg
              && (String.sub msg i n = needle || scan (i + 1))
            in
            scan 0))
       [ "4k"; "32b" ]
   | _ -> Alcotest.fail "expected Failure")

let test_size_labels () =
  let label n = Format.asprintf "%a" Memsim.Sweep.pp_size n in
  Alcotest.(check string) "kb" "64k" (label (64 * 1024));
  Alcotest.(check string) "mb" "2m" (label (2 * 1024 * 1024));
  Alcotest.(check string) "bytes" "48b" (label 48);
  (* non-power-of-two counts are not mislabeled *)
  Alcotest.(check string) "1.5m, not 1536k" "1.5m" (label (3 * 512 * 1024));
  Alcotest.(check string) "2.25m" "2.25m" (label (9 * 256 * 1024));
  Alcotest.(check string) "odd kilobytes stay in k" "1025k" (label (1025 * 1024));
  Alcotest.(check string) "non-multiples stay exact" "1536b" (label 1536);
  Alcotest.(check string) "zero" "0b" (label 0)

let test_tee_and_counting () =
  let s1, n1 = Memsim.Trace.counting () in
  let s2, n2 = Memsim.Trace.counting () in
  let s3, n3 = Memsim.Trace.counting () in
  let tee = Memsim.Trace.tee [ s1; s2; s3 ] in
  tee.Memsim.Trace.access 0 Memsim.Trace.Read mutator;
  tee.Memsim.Trace.access 4 Memsim.Trace.Write mutator;
  Alcotest.(check (list int)) "all counted" [ 2; 2; 2 ] [ n1 (); n2 (); n3 () ]

(* --- Set-associative cache --------------------------------------------- *)

let mk_assoc ?(policy = Memsim.Cache.Write_validate) ?(size = 1024)
    ?(block = 64) ~ways () =
  Memsim.Assoc.create
    (Memsim.Assoc.config ~write_miss_policy:policy ~size_bytes:size
       ~block_bytes:block ~ways ())

let test_assoc_lru () =
  (* 2-way, one set worth of conflict: A, B, A then C must evict B. *)
  let c = mk_assoc ~size:128 ~block:64 ~ways:2 () in
  let a = 0 and b = 128 and cc = 256 in
  Memsim.Assoc.access c a Memsim.Trace.Read mutator;
  Memsim.Assoc.access c b Memsim.Trace.Read mutator;
  Memsim.Assoc.access c a Memsim.Trace.Read mutator;
  Memsim.Assoc.access c cc Memsim.Trace.Read mutator;
  (* A must still hit; B must miss. *)
  Memsim.Assoc.access c a Memsim.Trace.Read mutator;
  Alcotest.(check int) "A survives (LRU evicts B)" 3
    (Memsim.Assoc.stats c).Memsim.Cache.misses;
  Memsim.Assoc.access c b Memsim.Trace.Read mutator;
  Alcotest.(check int) "B was evicted" 4
    (Memsim.Assoc.stats c).Memsim.Cache.misses

let test_assoc_removes_conflicts () =
  (* Two addresses that thrash a direct-mapped cache coexist in a
     2-way set. *)
  let direct = mk ~size:1024 ~block:64 () in
  let two_way = mk_assoc ~size:1024 ~block:64 ~ways:2 () in
  for _ = 1 to 100 do
    List.iter
      (fun addr ->
        Memsim.Cache.access direct addr Memsim.Trace.Read mutator;
        Memsim.Assoc.access two_way addr Memsim.Trace.Read mutator)
      [ 0; 1024 ]
  done;
  Alcotest.(check int) "direct-mapped thrashes" 200
    (stats direct).Memsim.Cache.misses;
  Alcotest.(check int) "two-way holds both" 2
    (Memsim.Assoc.stats two_way).Memsim.Cache.misses

let test_assoc_validation () =
  let bad f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  bad (fun () -> mk_assoc ~ways:3 ());
  bad (fun () -> mk_assoc ~ways:32 ());
  bad (fun () -> mk_assoc ~size:64 ~block:64 ~ways:2 ())

(* --- Two-level hierarchy ------------------------------------------------ *)

let mk_hierarchy () =
  Memsim.Hierarchy.create
    (Memsim.Hierarchy.config
       ~l1:(Memsim.Cache.config ~size_bytes:512 ~block_bytes:64 ())
       ~l2:(Memsim.Cache.config ~size_bytes:4096 ~block_bytes:64 ())
       ())

let test_hierarchy_refill () =
  let h = mk_hierarchy () in
  (* first read misses both levels *)
  Memsim.Hierarchy.access h 0 Memsim.Trace.Read mutator;
  Alcotest.(check int) "L1 fetch" 1
    (Memsim.Hierarchy.l1_stats h).Memsim.Cache.fetches;
  Alcotest.(check int) "L2 fetch" 1
    (Memsim.Hierarchy.l2_stats h).Memsim.Cache.fetches;
  (* evict block 0 from L1 (conflict at 512) and re-read: L2 absorbs *)
  Memsim.Hierarchy.access h 512 Memsim.Trace.Read mutator;
  Memsim.Hierarchy.access h 0 Memsim.Trace.Read mutator;
  Alcotest.(check int) "three L1 fetches" 3
    (Memsim.Hierarchy.l1_stats h).Memsim.Cache.fetches;
  Alcotest.(check int) "only two L2 fetches (one L2 hit)" 2
    (Memsim.Hierarchy.l2_stats h).Memsim.Cache.fetches

let test_hierarchy_writeback_path () =
  let h = mk_hierarchy () in
  (* dirty a block in L1, evict it, and re-read: the write-back must
     have installed it in L2 so no memory fetch is needed *)
  Memsim.Hierarchy.access h 0 Memsim.Trace.Write mutator;
  Memsim.Hierarchy.access h 512 Memsim.Trace.Read mutator;
  (* reading a different word of the written-back block: the whole
     block must be valid in L2, so only the 512 read ever fetched *)
  Memsim.Hierarchy.access h 8 Memsim.Trace.Read mutator;
  Alcotest.(check int) "L1 write-back happened" 1
    (Memsim.Hierarchy.l1_stats h).Memsim.Cache.writebacks;
  Alcotest.(check int) "L2 fetched only for the read at 512" 1
    (Memsim.Hierarchy.l2_stats h).Memsim.Cache.fetches

let test_hierarchy_overhead () =
  let h = mk_hierarchy () in
  Memsim.Hierarchy.access h 0 Memsim.Trace.Read mutator;
  (* disjoint charging: the lone L1 fetch also misses L2, so it pays
     only the memory penalty (330ns) — no L2-hit service — over 100
     slow-processor instructions at 30ns each *)
  let o = Memsim.Hierarchy.overhead h Memsim.Timing.Slow ~instructions:100 in
  Alcotest.(check (float 1e-9)) "overhead math" 0.11 o;
  (* evict block 0 from L1 and re-read: that fetch hits L2 and adds
     the 60ns L2 service on top *)
  Memsim.Hierarchy.access h 512 Memsim.Trace.Read mutator;
  Memsim.Hierarchy.access h 0 Memsim.Trace.Read mutator;
  let o = Memsim.Hierarchy.overhead h Memsim.Timing.Slow ~instructions:100 in
  Alcotest.(check (float 1e-9)) "disjoint L2 hit charge" 0.24 o

(* A pseudo-random event stream delivered per-event and via the packed
   chunk codec must leave both levels in identical states: the chunked
   path forces L1's per-event slow path so L2 ordering is exact. *)
let test_hierarchy_chunk_equiv () =
  let events =
    let st = Random.State.make [| 0x4c32 |] in
    List.init 4096 (fun _ ->
        let addr = Random.State.int st 8192 * 4 in
        let kind =
          match Random.State.int st 3 with
          | 0 -> Memsim.Trace.Read
          | 1 -> Memsim.Trace.Write
          | _ -> Memsim.Trace.Alloc_write
        in
        let phase = if Random.State.int st 4 = 0 then collector else mutator in
        (addr, kind, phase))
  in
  let per_event = mk_hierarchy () in
  List.iter (fun (a, k, p) -> Memsim.Hierarchy.access per_event a k p) events;
  let chunked = mk_hierarchy () in
  let buf = Memsim.Chunk.create_buf 512 in
  let n = ref 0 in
  let flush () =
    Memsim.Hierarchy.access_chunk chunked buf 0 !n;
    n := 0
  in
  List.iter
    (fun (a, k, p) ->
      Bigarray.Array1.set buf !n (Memsim.Chunk.pack a k p);
      incr n;
      if !n = 512 then flush ())
    events;
  flush ();
  Alcotest.(check bool) "L1 stats equal" true
    (Memsim.Hierarchy.l1_stats per_event = Memsim.Hierarchy.l1_stats chunked);
  Alcotest.(check bool) "L2 stats equal" true
    (Memsim.Hierarchy.l2_stats per_event = Memsim.Hierarchy.l2_stats chunked)

(* A dirty line evicted from L1 lands in L2 dirty; evicting it from L2
   in turn must count an L2 write-back (the dirt propagates down the
   hierarchy, not evaporates). *)
let test_hierarchy_writeback_propagation () =
  let h =
    Memsim.Hierarchy.create
      (Memsim.Hierarchy.config
         ~l1:(Memsim.Cache.config ~size_bytes:128 ~block_bytes:64 ())
         ~l2:(Memsim.Cache.config ~size_bytes:256 ~block_bytes:64 ())
         ())
  in
  (* dirty block 0 in L1, evict it to L2 via the conflicting read at
     128 (L1 has 2 sets of 64b)... *)
  Memsim.Hierarchy.access h 0 Memsim.Trace.Write mutator;
  Memsim.Hierarchy.access h 128 Memsim.Trace.Read mutator;
  Alcotest.(check int) "L1 evicted the dirty block" 1
    (Memsim.Hierarchy.l1_stats h).Memsim.Cache.writebacks;
  Alcotest.(check int) "L2 still clean" 0
    (Memsim.Hierarchy.l2_stats h).Memsim.Cache.writebacks;
  (* ...then knock the written-back block out of L2 (4 sets of 64b:
     256 conflicts with 0) through reads that miss both levels *)
  Memsim.Hierarchy.access h 256 Memsim.Trace.Read mutator;
  Alcotest.(check int) "L2 wrote the dirty block back to memory" 1
    (Memsim.Hierarchy.l2_stats h).Memsim.Cache.writebacks

let test_hierarchy_validation () =
  match
    Memsim.Hierarchy.create
      (Memsim.Hierarchy.config
         ~l1:(Memsim.Cache.config ~size_bytes:512 ~block_bytes:64 ())
         ~l2:(Memsim.Cache.config ~size_bytes:4096 ~block_bytes:32 ())
         ())
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* --- Snapshot / restore -------------------------------------------------- *)

let random_events seed n =
  let st = Random.State.make [| seed |] in
  List.init n (fun _ ->
      let addr = Random.State.int st 4096 * 4 in
      let kind =
        match Random.State.int st 3 with
        | 0 -> Memsim.Trace.Read
        | 1 -> Memsim.Trace.Write
        | _ -> Memsim.Trace.Alloc_write
      in
      let phase = if Random.State.int st 4 = 0 then collector else mutator in
      (addr, kind, phase))

(* Snapshotting mid-stream and restoring into a fresh cache must make
   the remainder of the stream land identically: contents, per-word
   validity, dirt and counters all survive the round-trip. *)
let test_snapshot_roundtrip () =
  let first = random_events 0x5afe 2000 and rest = random_events 0xcafe 2000 in
  let live = mk ~block_stats:true () in
  List.iter (fun (a, k, p) -> Memsim.Cache.access live a k p) first;
  let buf = Buffer.create 0 in
  Memsim.Cache.snapshot live buf;
  Alcotest.(check int) "declared snapshot size" (Memsim.Cache.snapshot_bytes live)
    (Buffer.length buf);
  let restored = mk ~block_stats:true () in
  let next = Memsim.Cache.restore restored (Buffer.to_bytes buf) 0 in
  Alcotest.(check int) "restore consumed it all" (Buffer.length buf) next;
  Alcotest.(check bool) "counters survive" true (stats live = stats restored);
  List.iter
    (fun (a, k, p) ->
      Memsim.Cache.access live a k p;
      Memsim.Cache.access restored a k p)
    rest;
  Alcotest.(check bool) "identical continuation" true
    (stats live = stats restored)

let test_snapshot_geometry_guard () =
  let buf = Buffer.create 0 in
  Memsim.Cache.snapshot (mk ~size:1024 ~block:64 ()) buf;
  let b = Buffer.to_bytes buf in
  (match Memsim.Cache.restore (mk ~size:2048 ~block:64 ()) b 0 with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "expected Invalid_argument on a size mismatch");
  (match Memsim.Cache.restore (mk ~size:1024 ~block:32 ()) b 0 with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "expected Invalid_argument on a block mismatch");
  match
    Memsim.Cache.restore (mk ~size:1024 ~block:64 ()) (Bytes.sub b 0 40) 0
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on truncation"

(* --- Recording ----------------------------------------------------------- *)

let test_recording_replay () =
  let rec_ = Memsim.Recording.create () in
  let sink = Memsim.Recording.sink rec_ in
  sink.Memsim.Trace.access 0 Memsim.Trace.Alloc_write mutator;
  sink.Memsim.Trace.access 64 Memsim.Trace.Read collector;
  sink.Memsim.Trace.access 4 Memsim.Trace.Write mutator;
  Alcotest.(check int) "length" 3 (Memsim.Recording.length rec_);
  let a, k, p = Memsim.Recording.event rec_ 1 in
  Alcotest.(check int) "event addr" 64 a;
  Alcotest.(check bool) "event kind" true (k = Memsim.Trace.Read);
  Alcotest.(check bool) "event phase" true (p = Memsim.Trace.Collector);
  (* replay into a cache gives the same result as live feeding *)
  let live = mk () in
  Memsim.Cache.access live 0 Memsim.Trace.Alloc_write mutator;
  Memsim.Cache.access live 64 Memsim.Trace.Read collector;
  Memsim.Cache.access live 4 Memsim.Trace.Write mutator;
  let replayed = mk () in
  Memsim.Recording.replay rec_ (Memsim.Cache.sink replayed);
  Alcotest.(check bool) "replay = live" true (stats live = stats replayed)

let test_recording_file_roundtrip () =
  let rec_ = Memsim.Recording.create ~initial_capacity:4 () in
  let sink = Memsim.Recording.sink rec_ in
  for i = 0 to 99 do
    sink.Memsim.Trace.access (i * 4)
      (if i land 1 = 0 then Memsim.Trace.Read else Memsim.Trace.Alloc_write)
      (if i land 3 = 0 then collector else mutator)
  done;
  let path = Filename.temp_file "repro" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Memsim.Recording.save rec_ path;
      let back = Memsim.Recording.load path in
      Alcotest.(check int) "length survives" 100 (Memsim.Recording.length back);
      for i = 0 to 99 do
        Alcotest.(check bool)
          (Printf.sprintf "event %d survives" i)
          true
          (Memsim.Recording.event rec_ i = Memsim.Recording.event back i)
      done)

let test_recording_bad_file () =
  let path = Filename.temp_file "repro" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "not a trace file at all";
      close_out oc;
      match Memsim.Recording.load path with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "expected Failure")

let test_recording_truncated_file () =
  let rec_ = Memsim.Recording.create () in
  let sink = Memsim.Recording.sink rec_ in
  for i = 0 to 99 do
    sink.Memsim.Trace.access (i * 4) Memsim.Trace.Read mutator
  done;
  let path = Filename.temp_file "repro" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Memsim.Recording.save ~format:Memsim.Recording.V1 rec_ path;
      (* cut the file mid-payload: the header still declares 100 events *)
      let ic = open_in_bin path in
      let keep = really_input_string ic (16 + (8 * 50)) in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc keep;
      close_out oc;
      (match Memsim.Recording.load path with
       | exception Failure msg ->
         Alcotest.(check bool)
           ("truncation reported: " ^ msg)
           true
           (String.length msg > 0)
       | _ -> Alcotest.fail "truncated file must be rejected");
      (* trailing garbage is rejected too *)
      let oc = open_out_bin path in
      output_string oc keep;
      output_string oc (String.make (8 * 51) 'x');
      close_out oc;
      (match Memsim.Recording.load path with
       | exception Failure _ -> ()
       | _ -> Alcotest.fail "padded file must be rejected");
      (* a file shorter than the header is rejected cleanly *)
      let oc = open_out_bin path in
      output_string oc (String.sub keep 0 10);
      close_out oc;
      match Memsim.Recording.load path with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "header-less file must be rejected")

(* The on-disk magic numbers and layouts, spelled out independently of
   the implementation: these tests pin the formats so that a future
   change that silently breaks old files fails here. *)
let v1_magic = 0x5243545243414345L
let v2_magic = 0x3256545243414345L

let write_file path bytes =
  let oc = open_out_bin path in
  output_bytes oc bytes;
  close_out oc

let expect_failure path what =
  match Memsim.Recording.load path with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail (what ^ " must be rejected")

let test_recording_v1_legacy_load () =
  let rec_ = Memsim.Recording.create ~initial_capacity:16 () in
  let sink = Memsim.Recording.sink rec_ in
  for i = 0 to 99 do
    sink.Memsim.Trace.access (i * 16)
      (match i mod 3 with
       | 0 -> Memsim.Trace.Read
       | 1 -> Memsim.Trace.Write
       | _ -> Memsim.Trace.Alloc_write)
      (if i land 1 = 0 then mutator else collector)
  done;
  let path = Filename.temp_file "repro" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (* a file saved in the legacy format still loads *)
      Memsim.Recording.save ~format:Memsim.Recording.V1 rec_ path;
      let back = Memsim.Recording.load path in
      Alcotest.(check bool)
        "v1 load = original" true
        (Memsim.Recording.equal rec_ back);
      (* and so does a v1 file built byte by byte from the spec:
         16-byte header (magic, count), then 8 LE bytes per event of
         [byte_addr lsl 3 | kind lsl 1 | phase] *)
      let b = Bytes.create (16 + 16) in
      Bytes.set_int64_le b 0 v1_magic;
      Bytes.set_int64_le b 8 2L;
      Bytes.set_int64_le b 16 (Int64.of_int (64 lsl 3));
      Bytes.set_int64_le b 24 (Int64.of_int ((68 lsl 3) lor 2 lor 1));
      write_file path b;
      let crafted = Memsim.Recording.load path in
      Alcotest.(check int) "crafted length" 2 (Memsim.Recording.length crafted);
      Alcotest.(check bool)
        "crafted event 0" true
        (Memsim.Recording.event crafted 0
         = (64, Memsim.Trace.Read, Memsim.Trace.Mutator));
      Alcotest.(check bool)
        "crafted event 1" true
        (Memsim.Recording.event crafted 1
         = (68, Memsim.Trace.Write, Memsim.Trace.Collector)))

let test_recording_v1_corrupt_word () =
  let path = Filename.temp_file "repro" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let base word =
        let b = Bytes.create 24 in
        Bytes.set_int64_le b 0 v1_magic;
        Bytes.set_int64_le b 8 1L;
        Bytes.set_int64_le b 16 word;
        b
      in
      (* bit 62 set: the word does not round-trip through the 63-bit
         native int, so it must be rejected, not silently truncated *)
      write_file path (base 0x4000000000000000L);
      expect_failure path "word wider than a native int";
      (* kind code 3 does not exist *)
      write_file path (base (Int64.of_int ((64 lsl 3) lor 6)));
      expect_failure path "corrupt kind bits (v1)")

let v2_file ~count payload =
  let n = Bytes.length payload in
  let b = Bytes.create (17 + n) in
  Bytes.set_int64_le b 0 v2_magic;
  Bytes.set b 8 '\002';
  Bytes.set_int64_le b 9 (Int64.of_int count);
  Bytes.blit payload 0 b 17 n;
  b

let test_recording_v2_corrupt () =
  let rec_ = Memsim.Recording.create () in
  let sink = Memsim.Recording.sink rec_ in
  for i = 0 to 99 do
    sink.Memsim.Trace.access (i * 4) Memsim.Trace.Read mutator
  done;
  let path = Filename.temp_file "repro" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Memsim.Recording.save ~format:Memsim.Recording.V2 rec_ path;
      let ic = open_in_bin path in
      let full = really_input_string ic (in_channel_length ic) in
      close_in ic;
      (* cut mid-payload: the header still declares 100 events *)
      write_file path
        (Bytes.of_string (String.sub full 0 (String.length full - 20)));
      expect_failure path "truncated v2 payload";
      (* trailing garbage after the declared events *)
      write_file path (Bytes.of_string (full ^ "xxxx"));
      expect_failure path "v2 trailing bytes";
      (* unknown version byte *)
      let bad_version = Bytes.of_string full in
      Bytes.set bad_version 8 '\003';
      write_file path bad_version;
      expect_failure path "unsupported v2 version";
      (* kind code 3 in an event tag *)
      write_file path (v2_file ~count:1 (Bytes.make 1 '\006'));
      expect_failure path "corrupt kind bits (v2)";
      (* a varint running past 63 bits: a valid first byte with the
         continuation bit, then continuation bytes without end *)
      write_file path
        (v2_file ~count:1
           (Bytes.init 12 (fun i ->
                if i = 0 then '\x80' else if i < 11 then '\xff' else '\x01')));
      expect_failure path "varint overflow";
      (* a delta stepping below address zero *)
      let neg = (1 lsl 3) lor 0 in
      write_file path (v2_file ~count:1 (Bytes.make 1 (Char.chr neg)));
      expect_failure path "negative address")

let v3_magic = 0x3356545243414345L

let v3_file ?(version = '\003') ?(stride = '\008') ~count payload =
  let n = Bytes.length payload in
  let b = Bytes.make (24 + n) '\000' in
  Bytes.set_int64_le b 0 v3_magic;
  Bytes.set b 8 version;
  Bytes.set b 9 stride;
  Bytes.set_int64_le b 16 (Int64.of_int count);
  Bytes.blit payload 0 b 24 n;
  b

let test_recording_v3_spec () =
  let rec_ = Memsim.Recording.create () in
  let sink = Memsim.Recording.sink rec_ in
  for i = 0 to 99 do
    sink.Memsim.Trace.access (i * 16)
      (match i mod 3 with
       | 0 -> Memsim.Trace.Read
       | 1 -> Memsim.Trace.Write
       | _ -> Memsim.Trace.Alloc_write)
      (if i land 1 = 0 then mutator else collector)
  done;
  let path = Filename.temp_file "repro" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (* fixed stride: exactly 24 header bytes + 8 per event *)
      Memsim.Recording.save ~format:Memsim.Recording.V3 rec_ path;
      Alcotest.(check int) "v3 file size" (24 + (8 * 100))
        (Unix.stat path).Unix.st_size;
      let back = Memsim.Recording.load path in
      Alcotest.(check bool)
        "v3 load = original" true
        (Memsim.Recording.equal rec_ back);
      (* and a v3 file built byte by byte from the spec: 24-byte header
         (magic, version 3, stride 8, reserved zeros, count), then 8 LE
         bytes per event of the same packed word as v1 *)
      let payload = Bytes.create 16 in
      Bytes.set_int64_le payload 0 (Int64.of_int (64 lsl 3));
      Bytes.set_int64_le payload 8 (Int64.of_int ((68 lsl 3) lor 2 lor 1));
      write_file path (v3_file ~count:2 payload);
      let crafted = Memsim.Recording.load path in
      Alcotest.(check int) "crafted length" 2 (Memsim.Recording.length crafted);
      Alcotest.(check bool)
        "crafted event 0" true
        (Memsim.Recording.event crafted 0
         = (64, Memsim.Trace.Read, Memsim.Trace.Mutator));
      Alcotest.(check bool)
        "crafted event 1" true
        (Memsim.Recording.event crafted 1
         = (68, Memsim.Trace.Write, Memsim.Trace.Collector)))

let test_recording_v3_corrupt () =
  let path = Filename.temp_file "repro" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let payload = Bytes.create 8 in
      Bytes.set_int64_le payload 0 (Int64.of_int (64 lsl 3));
      (* unknown version byte under the v3 magic *)
      write_file path (v3_file ~version:'\004' ~count:1 payload);
      expect_failure path "unsupported v3 version";
      (* an event stride the loader does not speak *)
      write_file path (v3_file ~stride:'\016' ~count:1 payload);
      expect_failure path "unsupported v3 stride";
      (* header cut short *)
      write_file path (Bytes.sub (v3_file ~count:1 payload) 0 20);
      expect_failure path "short v3 header";
      (* payload shorter than the declared count *)
      write_file path (v3_file ~count:2 payload);
      expect_failure path "truncated v3 payload";
      (* trailing bytes after the declared events *)
      write_file path (Bytes.cat (v3_file ~count:1 payload) (Bytes.make 4 'x'));
      expect_failure path "v3 trailing bytes";
      (* negative declared count *)
      let neg = v3_file ~count:1 payload in
      Bytes.set_int64_le neg 16 (-1L);
      write_file path neg;
      expect_failure path "negative v3 count")

(* mmap-loaded recordings alias the file's pages: they must refuse
   appends instead of writing through to disk. *)
let test_recording_v3_read_only () =
  let rec_ = Memsim.Recording.create () in
  let sink = Memsim.Recording.sink rec_ in
  for i = 0 to 9 do
    sink.Memsim.Trace.access (i * 8) Memsim.Trace.Read mutator
  done;
  let path = Filename.temp_file "repro" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Memsim.Recording.save ~format:Memsim.Recording.V3 rec_ path;
      let mapped = Memsim.Recording.load path in
      let out = Memsim.Recording.sink mapped in
      (match out.Memsim.Trace.access 0 Memsim.Trace.Read mutator with
       | exception Invalid_argument _ -> ()
       | () -> Alcotest.fail "append to a mapped recording must fail");
      (* the failed append corrupted nothing *)
      Alcotest.(check bool)
        "mapped recording intact" true
        (Memsim.Recording.equal rec_ mapped))

(* Error messages name the detected format and the failing byte, so a
   corrupt trace can be diagnosed with `dd'. *)
let test_recording_error_messages () =
  let path = Filename.temp_file "repro" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let expect_prefix what prefix =
        match Memsim.Recording.load path with
        | exception Failure msg ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %S starts with %S" what msg prefix)
            true
            (String.length msg >= String.length prefix
             && String.sub msg 0 (String.length prefix) = prefix)
        | _ -> Alcotest.fail (what ^ " must be rejected")
      in
      write_file path (Bytes.make 10 '\xab');
      expect_prefix "short file" "Recording.load (byte 0): truncated file";
      write_file path (Bytes.make 32 '\xab');
      expect_prefix "bad magic" "Recording.load (byte 0): not a trace";
      let payload = Bytes.create 8 in
      Bytes.set_int64_le payload 0 (Int64.of_int (64 lsl 3));
      write_file path (v3_file ~stride:'\016' ~count:1 payload);
      expect_prefix "bad stride" "Recording.load (v3, byte 9):";
      write_file path (v3_file ~count:2 payload);
      expect_prefix "truncated v3" "Recording.load (v3, byte 16):")

(* --- Chunks ------------------------------------------------------------- *)

let all_kinds = [ Memsim.Trace.Read; Memsim.Trace.Write; Memsim.Trace.Alloc_write ]

let test_chunk_codec () =
  List.iter
    (fun kind ->
      List.iter
        (fun phase ->
          List.iter
            (fun addr ->
              let a, k, p =
                Memsim.Chunk.unpack (Memsim.Chunk.pack addr kind phase)
              in
              Alcotest.(check int) "addr survives" addr a;
              Alcotest.(check bool) "kind survives" true (k = kind);
              Alcotest.(check bool) "phase survives" true (p = phase))
            [ 0; 4; 0xfffffc; 1 lsl 40 ])
        [ mutator; collector ])
    all_kinds;
  (match Memsim.Chunk.kind_of_code 3 with
   | exception Failure _ -> ()
   | _ -> Alcotest.fail "bad kind code must be rejected")

let test_chunk_producer () =
  let emitted = ref [] in
  let sink, flush =
    Memsim.Chunk.producer ~chunk_events:8 (fun buf len ->
        emitted :=
          Array.to_list (Array.sub (Memsim.Chunk.to_array buf) 0 len)
          :: !emitted)
  in
  for i = 0 to 19 do
    sink.Memsim.Trace.access (i * 4) Memsim.Trace.Read mutator
  done;
  Alcotest.(check int) "two full chunks" 2 (List.length !emitted);
  flush ();
  Alcotest.(check (list int)) "chunk sizes" [ 4; 8; 8 ]
    (List.map List.length !emitted);
  let events = List.concat (List.rev !emitted) in
  Alcotest.(check int) "no event lost" 20 (List.length events);
  List.iteri
    (fun i w ->
      Alcotest.(check int) "in order" (i * 4) (Memsim.Chunk.addr w))
    events;
  flush ();
  Alcotest.(check int) "flush is idempotent" 3 (List.length !emitted)

let test_fanout () =
  let fan = Memsim.Chunk.Fanout.create ~consumers:2 ~capacity:4 in
  let chunk = Memsim.Chunk.of_array [| 1; 2; 3 |] in
  Memsim.Chunk.Fanout.push fan chunk 3;
  Memsim.Chunk.Fanout.push fan chunk 2;
  Memsim.Chunk.Fanout.close fan;
  let drain i =
    let rec loop acc =
      match Memsim.Chunk.Fanout.pop fan i with
      | None -> List.rev acc
      | Some (_, len) -> loop (len :: acc)
    in
    loop []
  in
  Alcotest.(check (list int)) "consumer 0 sees all chunks" [ 3; 2 ] (drain 0);
  Alcotest.(check (list int)) "consumer 1 sees all chunks" [ 3; 2 ] (drain 1);
  match Memsim.Chunk.Fanout.push fan chunk 1 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "push after close must fail"

(* A deterministic pseudo-random trace long enough to exercise every
   cache path: reads, stores, allocation, both phases, evictions. *)
let synth_trace n =
  let state = ref 0x2545F4914F6CDD1D in
  let next () =
    (* xorshift *)
    let x = !state in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    state := x;
    x land max_int
  in
  List.init n (fun _ ->
      let r = next () in
      let addr = (r lsr 8) land 0xffffc in
      let kind =
        match r land 3 with
        | 0 | 1 -> Memsim.Trace.Read
        | 2 -> Memsim.Trace.Write
        | _ -> Memsim.Trace.Alloc_write
      in
      let phase = if (r lsr 2) land 7 = 0 then collector else mutator in
      (addr, kind, phase))

let record_trace events =
  let rec_ = Memsim.Recording.create ~initial_capacity:256 () in
  let sink = Memsim.Recording.sink rec_ in
  List.iter (fun (a, k, p) -> sink.Memsim.Trace.access a k p) events;
  rec_

let small_grid () =
  Memsim.Sweep.create
    (Memsim.Sweep.grid ~cache_sizes:[ 1024; 4096; 16384 ]
       ~block_sizes:[ 16; 64; 256 ] ())

let test_run_parallel_matches_serial () =
  let events = synth_trace 50_000 in
  let recording = record_trace events in
  let serial = small_grid () in
  Memsim.Sweep.run_serial serial recording;
  (* the serial chunked engine matches the per-event oracle *)
  let oracle = small_grid () in
  List.iter
    (fun (a, k, p) -> (Memsim.Sweep.sink oracle).Memsim.Trace.access a k p)
    events;
  Alcotest.(check bool) "chunked = per-event" true
    (Memsim.Sweep.results oracle = Memsim.Sweep.results serial);
  List.iter
    (fun jobs ->
      let parallel = small_grid () in
      Memsim.Sweep.run_parallel ~jobs parallel recording;
      Alcotest.(check bool)
        (Printf.sprintf "parallel jobs=%d = serial" jobs)
        true
        (Memsim.Sweep.results serial = Memsim.Sweep.results parallel))
    [ 2; 4; 64 (* clamped to the cache count *) ]

let test_live_parallel_matches_serial () =
  let events = synth_trace 20_000 in
  let serial = small_grid () in
  List.iter
    (fun (a, k, p) -> (Memsim.Sweep.sink serial).Memsim.Trace.access a k p)
    events;
  List.iter
    (fun jobs ->
      let live = small_grid () in
      let sink, finish =
        Memsim.Sweep.live_parallel ~jobs ~chunk_events:512 ~capacity:2 live
      in
      List.iter (fun (a, k, p) -> sink.Memsim.Trace.access a k p) events;
      finish ();
      Alcotest.(check bool)
        (Printf.sprintf "live jobs=%d = serial" jobs)
        true
        (Memsim.Sweep.results serial = Memsim.Sweep.results live))
    [ 1; 3 ]

let test_chunked_sink_flush () =
  let events = synth_trace 1000 in
  let serial = small_grid () in
  List.iter
    (fun (a, k, p) -> (Memsim.Sweep.sink serial).Memsim.Trace.access a k p)
    events;
  let chunked = small_grid () in
  let sink, flush = Memsim.Sweep.chunked_sink ~chunk_events:300 chunked in
  List.iter (fun (a, k, p) -> sink.Memsim.Trace.access a k p) events;
  flush ();
  Alcotest.(check bool) "chunked sink = per-event" true
    (Memsim.Sweep.results serial = Memsim.Sweep.results chunked)

(* --- Properties -------------------------------------------------------- *)

(* The reference model: an address is a hit iff the last access mapping
   to its set was to the same block and (for reads) the word is
   fetched-or-written since the tag was installed.  Rather than
   duplicating the sub-block logic we check coarser invariants. *)
let trace_gen =
  QCheck.Gen.(
    list_size (int_bound 400)
      (pair (int_bound 4096) (int_bound 2)))

let invariants_prop =
  QCheck.Test.make ~count:200 ~name:"cache counter invariants"
    (QCheck.make trace_gen)
    (fun events ->
      let c = mk ~size:512 ~block:32 () in
      List.iter
        (fun (addr, k) ->
          let addr = addr land lnot 3 in
          let kind =
            match k with
            | 0 -> Memsim.Trace.Read
            | 1 -> Memsim.Trace.Write
            | _ -> Memsim.Trace.Alloc_write
          in
          Memsim.Cache.access c addr kind mutator)
        events;
      let s = stats c in
      s.Memsim.Cache.refs = List.length events
      && s.Memsim.Cache.misses <= s.Memsim.Cache.refs
      && s.Memsim.Cache.fetches <= s.Memsim.Cache.misses
      && s.Memsim.Cache.alloc_misses <= s.Memsim.Cache.misses
      && s.Memsim.Cache.writebacks <= s.Memsim.Cache.writes)

let policy_dominance_prop =
  (* Fetch-on-write never fetches less than write-validate on the same
     trace. *)
  QCheck.Test.make ~count:200 ~name:"fetch-on-write fetches >= write-validate"
    (QCheck.make trace_gen)
    (fun events ->
      let wv = mk ~policy:Memsim.Cache.Write_validate ~size:512 ~block:32 () in
      let fow = mk ~policy:Memsim.Cache.Fetch_on_write ~size:512 ~block:32 () in
      List.iter
        (fun (addr, k) ->
          let addr = addr land lnot 3 in
          let kind =
            match k with
            | 0 -> Memsim.Trace.Read
            | 1 -> Memsim.Trace.Write
            | _ -> Memsim.Trace.Alloc_write
          in
          Memsim.Cache.access wv addr kind mutator;
          Memsim.Cache.access fow addr kind mutator)
        events;
      (stats fow).Memsim.Cache.fetches >= (stats wv).Memsim.Cache.fetches)

let assoc_one_way_equals_direct_prop =
  QCheck.Test.make ~count:200 ~name:"1-way assoc cache = direct-mapped cache"
    (QCheck.make trace_gen)
    (fun events ->
      let direct = mk ~size:512 ~block:32 () in
      let one_way = mk_assoc ~size:512 ~block:32 ~ways:1 () in
      List.iter
        (fun (addr, k) ->
          let addr = addr land lnot 3 in
          let kind =
            match k with
            | 0 -> Memsim.Trace.Read
            | 1 -> Memsim.Trace.Write
            | _ -> Memsim.Trace.Alloc_write
          in
          Memsim.Cache.access direct addr kind mutator;
          Memsim.Assoc.access one_way addr kind mutator)
        events;
      stats direct = Memsim.Assoc.stats one_way)

let assoc_inclusion_prop =
  (* The classic LRU inclusion property: with the number of sets held
     fixed, adding ways can only remove (read) misses. *)
  QCheck.Test.make ~count:200 ~name:"LRU inclusion with fixed set count"
    (QCheck.make trace_gen)
    (fun events ->
      let run ways =
        let c = mk_assoc ~size:(512 * ways) ~block:32 ~ways () in
        List.iter
          (fun (addr, _) ->
            Memsim.Assoc.access c (addr land lnot 3) Memsim.Trace.Read mutator)
          events;
        (Memsim.Assoc.stats c).Memsim.Cache.misses
      in
      let m1 = run 1 in
      let m2 = run 2 in
      let m4 = run 4 in
      m4 <= m2 && m2 <= m1)

let fow_equals_misses_prop =
  QCheck.Test.make ~count:200 ~name:"under fetch-on-write, fetches = misses"
    (QCheck.make trace_gen)
    (fun events ->
      let c = mk ~policy:Memsim.Cache.Fetch_on_write ~size:512 ~block:32 () in
      List.iter
        (fun (addr, k) ->
          let addr = addr land lnot 3 in
          let kind =
            match k with
            | 0 -> Memsim.Trace.Read
            | 1 -> Memsim.Trace.Write
            | _ -> Memsim.Trace.Alloc_write
          in
          Memsim.Cache.access c addr kind mutator)
        events;
      let s = stats c in
      s.Memsim.Cache.fetches = s.Memsim.Cache.misses)

let trace_gen_phased =
  QCheck.Gen.(
    list_size (int_bound 400)
      (triple (int_bound 4096) (int_bound 2) bool))

let chunk_equivalence_prop =
  (* The batched consumer must be observationally identical to the
     per-event entry point for every policy, phase, and both the
     fast path and the block-stats fallback path, even when the
     chunk is delivered in arbitrary (off, len) slices. *)
  QCheck.Test.make ~count:200 ~name:"access_chunk = per-event access"
    (QCheck.make trace_gen_phased)
    (fun events ->
      let decode (addr, k, coll) =
        let addr = addr land lnot 3 in
        let kind =
          match k with
          | 0 -> Memsim.Trace.Read
          | 1 -> Memsim.Trace.Write
          | _ -> Memsim.Trace.Alloc_write
        in
        (addr, kind, if coll then collector else mutator)
      in
      let events = List.map decode events in
      let packed =
        Memsim.Chunk.of_array
          (Array.of_list
             (List.map (fun (a, k, p) -> Memsim.Chunk.pack a k p) events))
      in
      let n = Bigarray.Array1.dim packed in
      List.for_all
        (fun (policy, block_stats) ->
          let reference = mk ~policy ~block_stats ~size:512 ~block:32 () in
          List.iter
            (fun (a, k, p) -> Memsim.Cache.access reference a k p)
            events;
          let batched = mk ~policy ~block_stats ~size:512 ~block:32 () in
          let third = n / 3 in
          Memsim.Cache.access_chunk batched packed 0 third;
          Memsim.Cache.access_chunk batched packed third (n - third);
          stats reference = stats batched
          && (not block_stats
              || (Memsim.Cache.block_refs reference
                    = Memsim.Cache.block_refs batched
                 && Memsim.Cache.block_misses reference
                    = Memsim.Cache.block_misses batched
                 && Memsim.Cache.block_alloc_misses reference
                    = Memsim.Cache.block_alloc_misses batched)))
        [ (Memsim.Cache.Write_validate, false);
          (Memsim.Cache.Write_validate, true);
          (Memsim.Cache.Fetch_on_write, false)
        ])

let recording_roundtrip_prop =
  (* Both on-disk formats round-trip arbitrary traces exactly.  The
     address stride is large so the v2 deltas span one to four varint
     bytes, and slabs are small so chunk boundaries land mid-file. *)
  QCheck.Test.make ~count:50 ~name:"v1/v2 file roundtrip = in-memory recording"
    (QCheck.make trace_gen_phased)
    (fun events ->
      let rec_ = Memsim.Recording.create ~initial_capacity:32 () in
      let sink = Memsim.Recording.sink rec_ in
      List.iter
        (fun (addr, k, coll) ->
          let addr = addr * 4092 in
          let kind =
            match k with
            | 0 -> Memsim.Trace.Read
            | 1 -> Memsim.Trace.Write
            | _ -> Memsim.Trace.Alloc_write
          in
          sink.Memsim.Trace.access addr kind
            (if coll then collector else mutator))
        events;
      let path = Filename.temp_file "repro" ".trace" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Memsim.Recording.save ~format:Memsim.Recording.V2 rec_ path;
          let v2 = Memsim.Recording.load path in
          Memsim.Recording.save ~format:Memsim.Recording.V1 rec_ path;
          let v1 = Memsim.Recording.load path in
          Memsim.Recording.equal rec_ v2 && Memsim.Recording.equal rec_ v1))

let () =
  Alcotest.run "memsim"
    [ ( "timing",
        [ Alcotest.test_case "penalty table" `Quick test_penalties;
          Alcotest.test_case "overhead math" `Quick test_overhead_math
        ] );
      ( "cache",
        [ Alcotest.test_case "read miss then hit" `Quick test_read_miss_then_hit;
          Alcotest.test_case "direct-mapped conflicts" `Quick test_direct_mapped_conflict;
          Alcotest.test_case "write-validate avoids fetches" `Quick test_write_validate_no_fetch;
          Alcotest.test_case "sub-block validity" `Quick test_write_validate_subblock;
          Alcotest.test_case "word 63 validates (256b blocks)" `Quick test_word63_validates;
          Alcotest.test_case "fetch-on-write" `Quick test_fetch_on_write;
          Alcotest.test_case "collector phase" `Quick test_collector_phase;
          Alcotest.test_case "write-backs" `Quick test_writebacks;
          Alcotest.test_case "per-phase counters" `Quick test_per_phase_counters;
          Alcotest.test_case "mutator-phase writeback" `Quick
            test_per_phase_mutator_writeback;
          Alcotest.test_case "alloc-miss classification" `Quick test_alloc_miss_classification;
          Alcotest.test_case "per-block stats" `Quick test_block_stats;
          Alcotest.test_case "per-block stats guard" `Quick test_block_stats_guard;
          Alcotest.test_case "miss hook" `Quick test_miss_hook;
          Alcotest.test_case "reset keeps contents" `Quick test_reset;
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "snapshot/restore roundtrip" `Quick
            test_snapshot_roundtrip;
          Alcotest.test_case "snapshot geometry guard" `Quick
            test_snapshot_geometry_guard
        ] );
      ( "sweep",
        [ Alcotest.test_case "fan-out" `Quick test_sweep;
          Alcotest.test_case "size labels" `Quick test_size_labels;
          Alcotest.test_case "tee and counting" `Quick test_tee_and_counting;
          Alcotest.test_case "run_parallel = serial" `Quick
            test_run_parallel_matches_serial;
          Alcotest.test_case "live_parallel = serial" `Quick
            test_live_parallel_matches_serial;
          Alcotest.test_case "chunked sink and flush" `Quick
            test_chunked_sink_flush
        ] );
      ( "chunks",
        [ Alcotest.test_case "codec roundtrip" `Quick test_chunk_codec;
          Alcotest.test_case "producer batching" `Quick test_chunk_producer;
          Alcotest.test_case "fan-out queue" `Quick test_fanout
        ] );
      ( "assoc",
        [ Alcotest.test_case "LRU replacement" `Quick test_assoc_lru;
          Alcotest.test_case "conflict elimination" `Quick
            test_assoc_removes_conflicts;
          Alcotest.test_case "per-phase counters" `Quick test_assoc_per_phase;
          Alcotest.test_case "validation" `Quick test_assoc_validation
        ] );
      ( "hierarchy",
        [ Alcotest.test_case "refill path" `Quick test_hierarchy_refill;
          Alcotest.test_case "write-back path" `Quick
            test_hierarchy_writeback_path;
          Alcotest.test_case "chunked delivery = per-event" `Quick
            test_hierarchy_chunk_equiv;
          Alcotest.test_case "write-back propagates to memory" `Quick
            test_hierarchy_writeback_propagation;
          Alcotest.test_case "overhead math" `Quick test_hierarchy_overhead;
          Alcotest.test_case "validation" `Quick test_hierarchy_validation
        ] );
      ( "recording",
        [ Alcotest.test_case "record and replay" `Quick test_recording_replay;
          Alcotest.test_case "file roundtrip" `Quick
            test_recording_file_roundtrip;
          Alcotest.test_case "bad file rejected" `Quick test_recording_bad_file;
          Alcotest.test_case "truncated file rejected" `Quick
            test_recording_truncated_file;
          Alcotest.test_case "v1 legacy load" `Quick
            test_recording_v1_legacy_load;
          Alcotest.test_case "v1 corrupt word rejected" `Quick
            test_recording_v1_corrupt_word;
          Alcotest.test_case "v2 corrupt file rejected" `Quick
            test_recording_v2_corrupt;
          Alcotest.test_case "v3 on-disk layout pinned" `Quick
            test_recording_v3_spec;
          Alcotest.test_case "v3 corrupt file rejected" `Quick
            test_recording_v3_corrupt;
          Alcotest.test_case "v3 mapped recording is read-only" `Quick
            test_recording_v3_read_only;
          Alcotest.test_case "load errors name format and byte" `Quick
            test_recording_error_messages
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest invariants_prop;
          QCheck_alcotest.to_alcotest policy_dominance_prop;
          QCheck_alcotest.to_alcotest fow_equals_misses_prop;
          QCheck_alcotest.to_alcotest assoc_one_way_equals_direct_prop;
          QCheck_alcotest.to_alcotest assoc_inclusion_prop;
          QCheck_alcotest.to_alcotest chunk_equivalence_prop;
          QCheck_alcotest.to_alcotest recording_roundtrip_prop
        ] )
    ]
