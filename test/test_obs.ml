(* Telemetry-library tests: JSON round-trips, metric instrument
   semantics, event timelines and their exports, and an end-to-end
   check that a collected run publishes GC lifecycle events. *)

(* --- Json -------------------------------------------------------------- *)

let rec json_equal a b =
  match (a, b) with
  | Obs.Json.Null, Obs.Json.Null -> true
  | Obs.Json.Bool x, Obs.Json.Bool y -> x = y
  | Obs.Json.Int x, Obs.Json.Int y -> x = y
  | Obs.Json.Float x, Obs.Json.Float y -> x = y
  | Obs.Json.Str x, Obs.Json.Str y -> x = y
  | Obs.Json.List xs, Obs.Json.List ys ->
    List.length xs = List.length ys && List.for_all2 json_equal xs ys
  | Obs.Json.Obj xs, Obs.Json.Obj ys ->
    List.length xs = List.length ys
    && List.for_all2
         (fun (k, v) (k', v') -> k = k' && json_equal v v')
         xs ys
  | _ -> false

let sample_doc =
  Obs.Json.Obj
    [ ("null", Obs.Json.Null);
      ("yes", Obs.Json.Bool true);
      ("no", Obs.Json.Bool false);
      ("int", Obs.Json.Int (-42));
      ("float", Obs.Json.Float 0.5);
      ("whole", Obs.Json.Float 3.0);
      ("str", Obs.Json.Str "line\nbreak \"quoted\" \\ tab\t");
      ("list", Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Str "two" ]);
      ("empty_list", Obs.Json.List []);
      ("empty_obj", Obs.Json.Obj [])
    ]

let test_json_roundtrip () =
  let compact = Obs.Json.to_string sample_doc in
  (match Obs.Json.of_string compact with
   | Ok j -> Alcotest.(check bool) "compact round-trip" true (json_equal j sample_doc)
   | Error msg -> Alcotest.fail ("compact: " ^ msg));
  match Obs.Json.of_string (Obs.Json.to_pretty_string sample_doc) with
  | Ok j -> Alcotest.(check bool) "pretty round-trip" true (json_equal j sample_doc)
  | Error msg -> Alcotest.fail ("pretty: " ^ msg)

let test_json_floats_stay_floats () =
  (* An integral float must not come back as Int. *)
  match Obs.Json.of_string (Obs.Json.to_string (Obs.Json.Float 3.0)) with
  | Ok (Obs.Json.Float f) -> Alcotest.(check (float 0.)) "value" 3.0 f
  | Ok _ -> Alcotest.fail "reparsed as a non-float"
  | Error msg -> Alcotest.fail msg

let test_json_errors () =
  List.iter
    (fun s ->
      match Obs.Json.of_string s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" s)
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{'a':1}" ]

let test_json_accessors () =
  let j = Obs.Json.Obj [ ("a", Obs.Json.Int 7); ("b", Obs.Json.Str "x") ] in
  Alcotest.(check (option int)) "member a" (Some 7)
    (Option.bind (Obs.Json.member "a" j) Obs.Json.to_int);
  Alcotest.(check (option string)) "member b" (Some "x")
    (Option.bind (Obs.Json.member "b" j) Obs.Json.to_str);
  Alcotest.(check bool) "missing member" true (Obs.Json.member "c" j = None)

(* --- Metrics ----------------------------------------------------------- *)

let test_counter () =
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter reg "test.count" in
  Alcotest.(check int) "starts at zero" 0 (Obs.Metrics.Counter.value c);
  Obs.Metrics.Counter.incr c;
  Obs.Metrics.Counter.add c 10;
  Alcotest.(check int) "incr + add" 11 (Obs.Metrics.Counter.value c);
  Obs.Metrics.Counter.set c 5;
  Alcotest.(check int) "set overwrites" 5 (Obs.Metrics.Counter.value c)

let test_disabled_registry () =
  let reg = Obs.Metrics.create ~enabled:false () in
  let c = Obs.Metrics.counter reg "test.count" in
  let g = Obs.Metrics.gauge reg "test.gauge" in
  let h = Obs.Metrics.histogram reg "test.hist" ~buckets:[| 1.; 2. |] in
  Obs.Metrics.Counter.incr c;
  Obs.Metrics.Counter.add c 100;
  Obs.Metrics.Gauge.set g 3.5;
  Obs.Metrics.Histogram.observe h 1.5;
  Alcotest.(check int) "counter untouched" 0 (Obs.Metrics.Counter.value c);
  Alcotest.(check (float 0.)) "gauge untouched" 0. (Obs.Metrics.Gauge.value g);
  Alcotest.(check int) "histogram untouched" 0 (Obs.Metrics.Histogram.count h);
  (* Counter.set publishes even when disabled (external totals). *)
  Obs.Metrics.Counter.set c 9;
  Alcotest.(check int) "set bypasses" 9 (Obs.Metrics.Counter.value c);
  (* flipping the switch turns updates back on *)
  Obs.Metrics.set_enabled reg true;
  Obs.Metrics.Counter.incr c;
  Alcotest.(check int) "re-enabled" 10 (Obs.Metrics.Counter.value c)

let test_idempotent_registration () =
  let reg = Obs.Metrics.create () in
  let a = Obs.Metrics.counter reg "shared" in
  let b = Obs.Metrics.counter reg "shared" in
  Obs.Metrics.Counter.incr a;
  Obs.Metrics.Counter.incr b;
  Alcotest.(check int) "same instrument" 2 (Obs.Metrics.Counter.value a);
  Alcotest.check_raises "type mismatch"
    (Invalid_argument
       "Obs.Metrics: \"shared\" already registered as a different instrument \
        type (wanted gauge)")
    (fun () -> ignore (Obs.Metrics.gauge reg "shared"))

let test_histogram () =
  let reg = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram reg "h" ~buckets:[| 10.; 100.; 1000. |] in
  List.iter (Obs.Metrics.Histogram.observe_int h) [ 5; 10; 50; 500; 5000 ];
  Alcotest.(check int) "count" 5 (Obs.Metrics.Histogram.count h);
  Alcotest.(check (float 0.)) "sum" 5565. (Obs.Metrics.Histogram.sum h);
  (* le 10 -> {5,10}; le 100 -> {50}; le 1000 -> {500}; +inf -> {5000} *)
  Alcotest.(check (array int)) "buckets" [| 2; 1; 1; 1 |]
    (Obs.Metrics.Histogram.bucket_counts h);
  Alcotest.check_raises "unsorted buckets"
    (Invalid_argument
       "Obs.Metrics.histogram: buckets must be non-empty and strictly \
        increasing")
    (fun () -> ignore (Obs.Metrics.histogram reg "bad" ~buckets:[| 2.; 1. |]))

let test_reset () =
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter reg "c" in
  let h = Obs.Metrics.histogram reg "h" ~buckets:[| 1. |] in
  Obs.Metrics.Counter.add c 3;
  Obs.Metrics.Histogram.observe h 0.5;
  Obs.Metrics.reset reg;
  Alcotest.(check int) "counter zeroed" 0 (Obs.Metrics.Counter.value c);
  Alcotest.(check int) "histogram zeroed" 0 (Obs.Metrics.Histogram.count h);
  (* the registration survives the reset *)
  Obs.Metrics.Counter.incr (Obs.Metrics.counter reg "c");
  Alcotest.(check int) "still the same cell" 1 (Obs.Metrics.Counter.value c)

let test_metrics_json () =
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter ~help:"a counter" reg "c" in
  let g = Obs.Metrics.gauge reg "g" in
  let h = Obs.Metrics.histogram reg "h" ~buckets:[| 1.; 2. |] in
  Obs.Metrics.Counter.add c 4;
  Obs.Metrics.Gauge.set g 2.5;
  Obs.Metrics.Histogram.observe h 1.5;
  let j = Obs.Metrics.to_json reg in
  (* the export must itself be valid JSON *)
  (match Obs.Json.of_string (Obs.Json.to_string j) with
   | Ok _ -> ()
   | Error msg -> Alcotest.fail msg);
  let counter_value =
    Option.bind (Obs.Json.member "c" j) (fun cj ->
        Option.bind (Obs.Json.member "value" cj) Obs.Json.to_int)
  in
  Alcotest.(check (option int)) "counter value" (Some 4) counter_value;
  let bucket_count =
    Option.bind (Obs.Json.member "h" j) (fun hj ->
        Option.bind (Obs.Json.member "buckets" hj) Obs.Json.to_list)
  in
  Alcotest.(check (option int)) "buckets incl +inf" (Some 3)
    (Option.map List.length bucket_count)

let test_counter_set_ignores_enabled () =
  (* Pinned semantics: Counter.set writes through even on a disabled
     registry.  It publishes externally-computed totals (cache sweep
     counters, run statistics), which must land regardless of whether
     live instrumentation is switched on.  See the .mli note. *)
  let reg = Obs.Metrics.create ~enabled:false () in
  let c = Obs.Metrics.counter reg "external.total" in
  Obs.Metrics.Counter.incr c;
  Alcotest.(check int) "incr is gated" 0 (Obs.Metrics.Counter.value c);
  Obs.Metrics.Counter.set c 42;
  Alcotest.(check int) "set bypasses the gate" 42
    (Obs.Metrics.Counter.value c);
  (* and the bypassed value is what exports *)
  let exported =
    Option.bind
      (Obs.Json.member "external.total" (Obs.Metrics.to_json reg))
      (fun cj -> Option.bind (Obs.Json.member "value" cj) Obs.Json.to_int)
  in
  Alcotest.(check (option int)) "exported" (Some 42) exported

let test_histogram_quantile () =
  let reg = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram reg "h" ~buckets:[| 10.; 100.; 1000. |] in
  Alcotest.(check bool) "empty histogram is nan" true
    (Float.is_nan (Obs.Metrics.Histogram.quantile h 0.5));
  List.iter (Obs.Metrics.Histogram.observe_int h) [ 5; 10; 50; 500; 5000 ];
  (* buckets: le 10 -> 2, le 100 -> 1, le 1000 -> 1, +inf -> 1 *)
  let q = Obs.Metrics.Histogram.quantile h in
  (* p50: target 2.5 lands in (10, 100], half-way through its single
     observation *)
  Alcotest.(check (float 1e-9)) "p50 interpolates" 55.0 (q 0.5);
  (* p20: target 1.0 lands in the first bucket, whose lower edge
     clamps at 0 *)
  Alcotest.(check (float 1e-9)) "first bucket starts at 0" 5.0 (q 0.2);
  (* overflow observations clamp to the last finite bound *)
  Alcotest.(check (float 1e-9)) "p99 clamps to last bound" 1000.0 (q 0.99);
  Alcotest.(check (float 1e-9)) "q below 0 clamps" (q 0.0) (q (-1.0));
  Alcotest.(check (float 1e-9)) "q above 1 clamps" (q 1.0) (q 2.0)

let test_percentile_export () =
  let reg = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram reg "lat" ~buckets:[| 10.; 100. |] in
  (* empty histogram: no percentile keys *)
  let member_h j = Obs.Json.member "lat" j in
  let p name =
    Option.bind (member_h (Obs.Metrics.to_json reg)) (fun hj ->
        match Obs.Json.member name hj with
        | Some (Obs.Json.Float f) -> Some f
        | _ -> None)
  in
  (match p "p50" with
   | None -> ()
   | Some _ -> Alcotest.fail "empty histogram exported percentiles");
  List.iter (Obs.Metrics.Histogram.observe_int h) [ 5; 50; 500 ];
  Alcotest.(check bool) "p50 present" true (p "p50" <> None);
  Alcotest.(check bool) "p90 present" true (p "p90" <> None);
  Alcotest.(check bool) "p99 present" true (p "p99" <> None);
  Alcotest.(check (option (float 1e-9))) "p50 value"
    (Some (Obs.Metrics.Histogram.quantile h 0.5))
    (p "p50")

(* --- Events ------------------------------------------------------------ *)

let test_timeline_clock () =
  let tl = Obs.Events.create () in
  Obs.Events.instant tl "a";
  Obs.Events.instant tl "b";
  Obs.Events.instant tl ~ts:99 "c";
  Alcotest.(check int) "default clock counts" 1 (Obs.Events.get tl 0).Obs.Events.ts;
  Alcotest.(check int) "second tick" 2 (Obs.Events.get tl 1).Obs.Events.ts;
  Alcotest.(check int) "explicit ts wins" 99 (Obs.Events.get tl 2).Obs.Events.ts;
  let time = ref 1000 in
  Obs.Events.set_clock tl (fun () -> !time);
  Obs.Events.instant tl "d";
  Alcotest.(check int) "external clock" 1000 (Obs.Events.get tl 3).Obs.Events.ts;
  Obs.Events.clear tl;
  Alcotest.(check int) "cleared" 0 (Obs.Events.length tl)

let test_timeline_growth () =
  let tl = Obs.Events.create () in
  for i = 1 to 1000 do
    Obs.Events.instant tl ~ts:i "e"
  done;
  Alcotest.(check int) "all retained" 1000 (Obs.Events.length tl);
  Alcotest.(check int) "order kept" 1000 (Obs.Events.get tl 999).Obs.Events.ts

let test_jsonl_roundtrip () =
  let tl = Obs.Events.create () in
  Obs.Events.span_begin tl ~ts:10 ~cat:"gc" ~args:[ ("n", Obs.Events.I 3) ]
    "gc.collection";
  Obs.Events.span_end tl ~ts:20 ~cat:"gc"
    ~args:
      [ ("bytes_copied", Obs.Events.I 4096);
        ("ratio", Obs.Events.F 0.25);
        ("collector", Obs.Events.S "cheney")
      ]
    "gc.collection";
  Obs.Events.instant tl ~ts:21 "marker";
  Obs.Events.sample tl ~ts:22 ~args:[ ("occupancy", Obs.Events.F 0.5) ] "heap";
  let text = Obs.Events.to_jsonl_string tl in
  Alcotest.(check int) "one line per event" 4
    (List.length
       (List.filter (fun l -> l <> "") (String.split_on_char '\n' text)));
  match Obs.Events.of_jsonl_string text with
  | Error msg -> Alcotest.fail msg
  | Ok evs ->
    Alcotest.(check bool) "round-trips exactly" true
      (evs = Obs.Events.events tl)

let test_jsonl_bad_line () =
  (match Obs.Events.of_jsonl_string "\n\n" with
   | Ok [] -> ()
   | Ok _ -> Alcotest.fail "blank lines should yield no events"
   | Error msg -> Alcotest.fail msg);
  match
    Obs.Events.of_jsonl_string
      "{\"ts\":1,\"name\":\"a\",\"kind\":\"instant\"}\nnot json\n"
  with
  | Ok _ -> Alcotest.fail "malformed line accepted"
  | Error msg ->
    Alcotest.(check bool) "error names line 2" true
      (String.length msg >= 7 && String.sub msg 0 7 = "line 2:")

let test_chrome_trace () =
  let tl = Obs.Events.create () in
  Obs.Events.span_begin tl ~ts:5 ~cat:"gc" "gc.collection";
  Obs.Events.span_end tl ~ts:9 ~cat:"gc" "gc.collection";
  Obs.Events.instant tl ~ts:10 "marker";
  Obs.Events.sample tl ~ts:11 ~args:[ ("v", Obs.Events.I 1) ] "counter";
  let j = Obs.Events.to_chrome_trace tl in
  let evs =
    match Option.bind (Obs.Json.member "traceEvents" j) Obs.Json.to_list with
    | Some evs -> evs
    | None -> Alcotest.fail "no traceEvents"
  in
  let ph i =
    Option.bind (Obs.Json.member "ph" (List.nth evs i)) Obs.Json.to_str
  in
  Alcotest.(check (list (option string))) "phase letters"
    [ Some "B"; Some "E"; Some "i"; Some "C" ]
    [ ph 0; ph 1; ph 2; ph 3 ];
  Alcotest.(check (option string)) "default category" (Some "repro")
    (Option.bind (Obs.Json.member "cat" (List.nth evs 2)) Obs.Json.to_str);
  match Obs.Json.of_string (Obs.Json.to_string j) with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg

(* --- The streaming JSONL writer ---------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_jsonl_writer_file () =
  let path = Filename.temp_file "test_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (* a tiny batch bound forces several intermediate flushes *)
      let w = Obs.Jsonl.create ~batch_bytes:16 path in
      for i = 1 to 50 do
        Obs.Jsonl.write w
          (Obs.Json.Obj [ ("i", Obs.Json.Int i); ("s", Obs.Json.Str "x\n") ])
      done;
      Alcotest.(check int) "lines counted" 50 (Obs.Jsonl.written w);
      Obs.Jsonl.close w;
      Obs.Jsonl.close w;
      (* idempotent *)
      Alcotest.check_raises "write after close"
        (Invalid_argument "Obs.Jsonl.write: writer is closed") (fun () ->
          Obs.Jsonl.write w Obs.Json.Null);
      let lines =
        List.filter
          (fun l -> l <> "")
          (String.split_on_char '\n' (read_file path))
      in
      Alcotest.(check int) "one line per value" 50 (List.length lines);
      List.iteri
        (fun idx l ->
          match Obs.Json.of_string l with
          | Ok j ->
            Alcotest.(check (option int)) "payload intact" (Some (idx + 1))
              (Option.bind (Obs.Json.member "i" j) Obs.Json.to_int)
          | Error msg ->
            Alcotest.fail (Printf.sprintf "line %d: %s" (idx + 1) msg))
        lines)

let test_jsonl_writer_borrowed () =
  let path = Filename.temp_file "test_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      let w = Obs.Jsonl.to_channel oc in
      Obs.Jsonl.write w (Obs.Json.Int 1);
      Obs.Jsonl.close w;
      (* the channel stays usable: the writer borrowed it *)
      output_string oc "trailer\n";
      close_out oc;
      Alcotest.(check string) "writer flushed, channel kept open"
        "1\ntrailer\n" (read_file path))

let test_events_write_jsonl_streams () =
  (* the streamed file must be byte-identical to the eager encoding *)
  let tl = Obs.Events.create () in
  Obs.Events.span_begin tl ~ts:1 ~cat:"gc" ~args:[ ("n", Obs.Events.I 7) ]
    "gc.collection";
  Obs.Events.span_end tl ~ts:5 ~cat:"gc"
    ~args:[ ("ratio", Obs.Events.F 0.25) ]
    "gc.collection";
  Obs.Events.instant tl ~ts:6 "quote\"backslash\\";
  let path = Filename.temp_file "test_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Events.write_jsonl tl path;
      Alcotest.(check string) "streamed = eager"
        (Obs.Events.to_jsonl_string tl)
        (read_file path))

(* --- Property: the JSONL export round-trips bit-identically ------------ *)

let event_gen =
  let open QCheck.Gen in
  (* Bytes 0-255 exercise every escaping path: controls, quote,
     backslash, and raw high bytes passed through untouched. *)
  let raw_string = string_size ~gen:(map Char.chr (int_range 0 255)) (int_bound 12) in
  let arg =
    frequency
      [ (3, map (fun i -> Obs.Events.I i) (int_range (-1_000_000) 1_000_000));
        (* quarters are exact in binary and survive the float
           printer's shortest-form round-trip *)
        (2, map (fun i -> Obs.Events.F (float_of_int i /. 4.0))
             (int_range (-4_000) 4_000));
        (2, map (fun s -> Obs.Events.S s) raw_string)
      ]
  in
  let kind =
    oneofl
      [ Obs.Events.Instant; Obs.Events.Begin; Obs.Events.End;
        Obs.Events.Sample ]
  in
  map
    (fun (ts, name, cat, kind, args) ->
      { Obs.Events.ts; name; cat; kind; args })
    (tup5 (int_bound 1_000_000) raw_string raw_string kind
       (list_size (int_bound 4) (tup2 raw_string arg)))

let timeline_of_events evs =
  let tl = Obs.Events.create () in
  List.iter
    (fun e ->
      Obs.Events.emit tl ~ts:e.Obs.Events.ts ~cat:e.Obs.Events.cat
        ~args:e.Obs.Events.args e.Obs.Events.kind e.Obs.Events.name)
    evs;
  tl

let jsonl_roundtrip_prop =
  QCheck.Test.make ~count:200 ~name:"jsonl export round-trips bit-identically"
    (QCheck.make
       ~print:(fun evs -> Obs.Events.to_jsonl_string (timeline_of_events evs))
       QCheck.Gen.(list_size (int_bound 12) event_gen))
    (fun evs ->
      let s1 = Obs.Events.to_jsonl_string (timeline_of_events evs) in
      match Obs.Events.of_jsonl_string s1 with
      | Error msg -> QCheck.Test.fail_report msg
      | Ok evs' ->
        evs' = evs
        && Obs.Events.to_jsonl_string (timeline_of_events evs') = s1)

(* --- End to end: a collected run emits GC telemetry ------------------- *)

let test_gc_run_emits_events () =
  let tl = Obs.Events.create () in
  let r =
    Core.Runner.run ~scale:1
      ~gc:(Vscheme.Machine.Cheney { semispace_bytes = 256 * 1024 })
      ~events:tl Workloads.Workload.nbody
  in
  let collections = r.Core.Runner.stats.Vscheme.Machine.collections in
  Alcotest.(check bool) "the run collected" true (collections >= 1);
  let evs = Obs.Events.events tl in
  let begins =
    List.filter
      (fun e ->
        e.Obs.Events.name = "gc.collection" && e.Obs.Events.kind = Obs.Events.Begin)
      evs
  in
  let ends =
    List.filter
      (fun e ->
        e.Obs.Events.name = "gc.collection" && e.Obs.Events.kind = Obs.Events.End)
      evs
  in
  Alcotest.(check int) "one Begin per collection" collections
    (List.length begins);
  Alcotest.(check int) "one End per collection" collections (List.length ends);
  (* every End carries a plausible bytes_copied *)
  List.iter
    (fun e ->
      match List.assoc_opt "bytes_copied" e.Obs.Events.args with
      | Some (Obs.Events.I b) ->
        Alcotest.(check bool) "bytes_copied plausible" true
          (b > 0 && b <= 256 * 1024)
      | _ -> Alcotest.fail "End without bytes_copied")
    ends;
  (* timestamps are the simulated instruction clock: nondecreasing *)
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      a.Obs.Events.ts <= b.Obs.Events.ts && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "timestamps nondecreasing" true (sorted evs);
  (* phase markers from the runner *)
  Alcotest.(check bool) "phase.run marker present" true
    (List.exists (fun e -> e.Obs.Events.name = "phase.run") evs);
  (* the shared gc.* counters tracked the same run *)
  Alcotest.(check bool) "gc.collections counted" true
    (Obs.Metrics.Counter.value Vscheme.Gc_obs.collections >= collections)

let test_telemetry_document () =
  let tel = Core.Telemetry.create () in
  let cache =
    Memsim.Cache.create
      (Memsim.Cache.config ~size_bytes:(64 * 1024) ~block_bytes:64 ())
  in
  let r =
    Core.Runner.run ~scale:1
      ~gc:(Vscheme.Machine.Cheney { semispace_bytes = 256 * 1024 })
      ~sinks:[ Memsim.Cache.sink cache ]
      ~events:(Core.Telemetry.timeline tel) Workloads.Workload.lred
  in
  Core.Telemetry.record_run tel r;
  Core.Telemetry.record_cache tel (Memsim.Cache.stats cache);
  let j = Core.Telemetry.to_json tel in
  (match Obs.Json.of_string (Obs.Json.to_string j) with
   | Ok _ -> ()
   | Error msg -> Alcotest.fail msg);
  let metric name =
    Option.bind (Obs.Json.member "metrics" j) (fun m ->
        Option.bind (Obs.Json.member name m) (fun c ->
            Option.bind (Obs.Json.member "value" c) Obs.Json.to_int))
  in
  (* per-phase cache counters are present and consistent *)
  let s = Memsim.Cache.stats cache in
  Alcotest.(check (option int)) "mutator misses" (Some s.Memsim.Cache.misses)
    (metric "cache.mutator.misses");
  Alcotest.(check (option int)) "collector misses"
    (Some s.Memsim.Cache.collector_misses)
    (metric "cache.collector.misses");
  Alcotest.(check bool) "collector saw traffic" true
    (s.Memsim.Cache.collector_refs > 0);
  (* the events list holds the GC lifecycle *)
  let events =
    Option.bind (Obs.Json.member "events" j) Obs.Json.to_list
  in
  let is_gc e =
    Option.bind (Obs.Json.member "name" e) Obs.Json.to_str
    = Some "gc.collection"
  in
  Alcotest.(check bool) "gc events exported" true
    (match events with Some evs -> List.exists is_gc evs | None -> false);
  Alcotest.(check (option string)) "collector meta" (Some "cheney")
    (Option.bind (Obs.Json.member "meta" j) (fun m ->
         Option.bind (Obs.Json.member "collector" m) Obs.Json.to_str))

let test_of_recording () =
  let rec_ = Memsim.Recording.create () in
  let sink = Memsim.Recording.sink rec_ in
  let push phase =
    sink.Memsim.Trace.access 0 Memsim.Trace.Read phase
  in
  push Memsim.Trace.Mutator;
  push Memsim.Trace.Collector;
  push Memsim.Trace.Collector;
  push Memsim.Trace.Mutator;
  push Memsim.Trace.Collector;
  let tl = Core.Telemetry.of_recording rec_ in
  let spans =
    List.filter
      (fun e -> e.Obs.Events.name = "gc.collection")
      (Obs.Events.events tl)
  in
  (* two collector episodes -> two Begin/End pairs (one closed at EOF) *)
  Alcotest.(check int) "two spans" 4 (List.length spans);
  match List.rev spans with
  | last :: _ ->
    Alcotest.(check bool) "closed at end of trace" true
      (last.Obs.Events.kind = Obs.Events.End && last.Obs.Events.ts = 5)
  | [] -> Alcotest.fail "no spans"

let () =
  Alcotest.run "obs"
    [ ( "json",
        [ Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "floats stay floats" `Quick
            test_json_floats_stay_floats;
          Alcotest.test_case "rejects malformed input" `Quick test_json_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors
        ] );
      ( "metrics",
        [ Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "disabled registry" `Quick test_disabled_registry;
          Alcotest.test_case "idempotent registration" `Quick
            test_idempotent_registration;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "counter.set ignores enabled" `Quick
            test_counter_set_ignores_enabled;
          Alcotest.test_case "histogram quantile" `Quick
            test_histogram_quantile;
          Alcotest.test_case "percentile export" `Quick test_percentile_export;
          Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "json export" `Quick test_metrics_json
        ] );
      ( "events",
        [ Alcotest.test_case "clock" `Quick test_timeline_clock;
          Alcotest.test_case "growth" `Quick test_timeline_growth;
          Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "jsonl bad line" `Quick test_jsonl_bad_line;
          Alcotest.test_case "jsonl writer" `Quick test_jsonl_writer_file;
          Alcotest.test_case "jsonl writer borrows" `Quick
            test_jsonl_writer_borrowed;
          Alcotest.test_case "write_jsonl streams" `Quick
            test_events_write_jsonl_streams;
          QCheck_alcotest.to_alcotest jsonl_roundtrip_prop;
          Alcotest.test_case "chrome trace" `Quick test_chrome_trace
        ] );
      ( "end-to-end",
        [ Alcotest.test_case "gc run emits events" `Quick
            test_gc_run_emits_events;
          Alcotest.test_case "telemetry document" `Quick
            test_telemetry_document;
          Alcotest.test_case "timeline from recording" `Quick test_of_recording
        ] )
    ]
