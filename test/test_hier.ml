(* Differential tests for the fused miss-stream hierarchy engine: on a
   real recorded trace of every workload, the fused engine (L1 over
   packed chunks, lower levels draining the appended miss stream) must
   produce per-level statistics bit-identical to the hooked per-event
   oracle, for every depth and replacement policy in the matrix.  The
   parallel and kill-and-resume sweep paths must in turn be
   bit-identical to a serial fused run. *)

module Level = Memsim.Level
module Hier = Memsim.Hier

(* Small geometries so even the short scale-1 traces overflow every
   level: L2 and L3 see plenty of traffic.  The matrix covers both
   depths and all five policies, mixing policies across levels. *)
let hier_configs =
  [ ("2L-lru",
     Hier.config
       ~levels:
         [ Level.config ~policy:Level.Lru ~size_bytes:2048 ~block_bytes:32
             ~ways:2 ();
           Level.config ~policy:Level.Lru ~size_bytes:8192 ~block_bytes:32
             ~ways:4 ()
         ]
       ());
    ("2L-plru",
     Hier.config
       ~levels:
         [ Level.config ~policy:Level.Tree_plru ~size_bytes:2048
             ~block_bytes:32 ~ways:4 ();
           Level.config ~policy:Level.Tree_plru ~size_bytes:8192
             ~block_bytes:64 ~ways:8 ()
         ]
       ());
    ("3L-mru",
     Hier.config
       ~levels:
         [ Level.config ~policy:Level.Tree_plru ~size_bytes:2048
             ~block_bytes:32 ~ways:2 ();
           Level.config ~policy:Level.Lru ~size_bytes:8192 ~block_bytes:64
             ~ways:4 ();
           Level.config ~policy:Level.Mru ~size_bytes:32768 ~block_bytes:64
             ~ways:8 ()
         ]
       ());
    ("3L-qlru-r1u2",
     Hier.config
       ~levels:
         [ Level.config ~policy:Level.Tree_plru ~size_bytes:2048
             ~block_bytes:32 ~ways:4 ();
           Level.config ~policy:Level.Tree_plru ~size_bytes:8192
             ~block_bytes:64 ~ways:4 ();
           Level.config ~policy:Level.Qlru_h11_m1_r1_u2 ~size_bytes:32768
             ~block_bytes:64 ~ways:8 ()
         ]
       ());
    (* 12-way L3: a non-power-of-two associativity (the Coffee Lake
       shape) through the packed QLRU age words. *)
    ("3L-qlru-r0u0",
     Hier.config
       ~levels:
         [ Level.config ~policy:Level.Lru ~size_bytes:2048 ~block_bytes:32
             ~ways:2 ();
           Level.config ~policy:Level.Tree_plru ~size_bytes:8192
             ~block_bytes:64 ~ways:4 ();
           Level.config ~policy:Level.Qlru_h11_m1_r0_u0 ~size_bytes:49152
             ~block_bytes:64 ~ways:12 ()
         ]
       ())
  ]

let check_levels_identical name (a : Hier.t) (b : Hier.t) =
  let sa = Hier.stats a and sb = Hier.stats b in
  Alcotest.(check int) (name ^ ": level count") (Array.length sa)
    (Array.length sb);
  Array.iteri
    (fun i (s : Memsim.Cache.stats) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: L%d stats bit-identical" name (i + 1))
        true
        (s = sb.(i)))
    sa

let drive_chunks h recording =
  Memsim.Recording.iter_chunks recording (fun buf len ->
      Hier.access_chunk h buf 0 len)

(* --- fused = hooked oracle, full matrix ------------------------------ *)

let test_workload w () =
  let _, recording = Core.Runner.record ~scale:1 w in
  List.iter
    (fun (name, cfg) ->
      let hooked = Hier.create ~fused:false cfg in
      let fused = Hier.create ~fused:true cfg in
      drive_chunks hooked recording;
      drive_chunks fused recording;
      check_levels_identical name hooked fused;
      (* the chunked sink is the live-run delivery path *)
      let live = Hier.create ~fused:true cfg in
      let sink, flush = Hier.chunked_sink ~chunk_events:1021 live in
      Memsim.Recording.replay recording sink;
      flush ();
      check_levels_identical (name ^ " via chunked_sink") hooked live)
    hier_configs

(* --- a 1-way Level is the direct-mapped reference engine ------------- *)

let test_level_matches_cache () =
  let _, recording =
    Core.Runner.record ~scale:1 Workloads.Workload.nbody
  in
  List.iter
    (fun policy ->
      let cache =
        Memsim.Cache.create
          (Memsim.Cache.config ~size_bytes:4096 ~block_bytes:32 ())
      in
      let level =
        Level.create
          (Level.config ~policy ~size_bytes:4096 ~block_bytes:32 ~ways:1 ())
      in
      Memsim.Recording.iter_chunks recording (fun buf len ->
          Memsim.Cache.access_chunk cache buf 0 len;
          Level.access_chunk level buf 0 len);
      Alcotest.(check bool)
        (Level.policy_label policy
        ^ ": 1-way level = direct-mapped cache")
        true
        (Level.stats level = Memsim.Cache.stats cache))
    [ Level.Lru; Level.Mru; Level.Qlru_h11_m1_r1_u2 ]

(* --- sweep engines over hierarchies ---------------------------------- *)

let make_fleet () =
  Array.of_list (List.map (fun (_, cfg) -> Hier.create cfg) hier_configs)

let check_fleets_identical name a b =
  Array.iteri (fun i h -> check_levels_identical
                  (Printf.sprintf "%s: hier %d" name i) h b.(i)) a

let test_parallel_vs_serial () =
  let _, recording =
    Core.Runner.record ~scale:1 Workloads.Workload.nbody
  in
  let serial = make_fleet () in
  Memsim.Sweep.hier_run_serial serial recording;
  List.iter
    (fun jobs ->
      let parallel = make_fleet () in
      Memsim.Sweep.hier_run_parallel ~jobs parallel recording;
      check_fleets_identical
        (Printf.sprintf "hier_run_parallel jobs=%d" jobs)
        serial parallel)
    [ 2; 3; 8 ]

let test_kill_and_resume () =
  let _, recording =
    Core.Runner.record ~scale:1 Workloads.Workload.nbody
  in
  let uninterrupted = make_fleet () in
  Memsim.Sweep.hier_run_serial uninterrupted recording;
  let ckpt = Filename.temp_file "hier" ".ckpt" in
  Sys.remove ckpt;
  let events = Memsim.Recording.length recording in
  let every = max 1 (events / 7) in
  (* First process: dies right after the third checkpoint lands. *)
  let victim = make_fleet () in
  (try
     Memsim.Sweep.hier_run_resumable ~checkpoint_every:every
       ~progress:(fun cursor -> if cursor >= 3 * every then raise Exit)
       ~checkpoint:ckpt victim recording
   with Exit -> ());
  (* Second process: fresh hierarchies restored from the checkpoint,
     replay finishes on two domains. *)
  let resumed = make_fleet () in
  Memsim.Sweep.hier_run_resumable ~jobs:2 ~checkpoint_every:every
    ~checkpoint:ckpt resumed recording;
  check_fleets_identical "kill-and-resume" uninterrupted resumed;
  (* A third run restores the final checkpoint and replays nothing. *)
  let idem = make_fleet () in
  Memsim.Sweep.hier_run_resumable ~checkpoint_every:every ~checkpoint:ckpt
    idem recording;
  check_fleets_identical "resume of a finished run" uninterrupted idem;
  Sys.remove ckpt

(* --- hierarchy snapshot round trip ----------------------------------- *)

let test_snapshot_roundtrip () =
  let _, recording =
    Core.Runner.record ~scale:1 Workloads.Workload.nbody
  in
  let cfg = Hier.preset Hier.Nhm in
  let a = Hier.create cfg in
  drive_chunks a recording;
  let buf = Buffer.create 1024 in
  Hier.snapshot a buf;
  Alcotest.(check int) "snapshot_bytes matches emitted size"
    (Hier.snapshot_bytes a) (Buffer.length buf);
  let b = Hier.create cfg in
  let stop = Hier.restore b (Buffer.to_bytes buf) 0 in
  Alcotest.(check int) "restore consumed the whole snapshot"
    (Buffer.length buf) stop;
  (* Both must continue bit-identically from the restored state. *)
  drive_chunks a recording;
  drive_chunks b recording;
  check_levels_identical "restored hierarchy continues identically" a b

(* --- the Hierarchy.overhead disjoint-charging fix -------------------- *)

let test_hierarchy_overhead_disjoint () =
  let mk bytes =
    Memsim.Cache.config ~size_bytes:bytes ~block_bytes:64 ()
  in
  let cfg =
    Memsim.Hierarchy.config ~l2_hit_ns:60.0 ~l1:(mk 1024) ~l2:(mk 8192) ()
  in
  let h = Memsim.Hierarchy.create cfg in
  (* A then B (same L1 set, different L2 sets) then A again: three L1
     fetches, two of which miss L2; the re-fetch of A hits L2. *)
  Memsim.Hierarchy.access h 0 Memsim.Trace.Read Memsim.Trace.Mutator;
  Memsim.Hierarchy.access h 1024 Memsim.Trace.Read Memsim.Trace.Mutator;
  Memsim.Hierarchy.access h 0 Memsim.Trace.Read Memsim.Trace.Mutator;
  let s1 = Memsim.Hierarchy.l1_stats h in
  let s2 = Memsim.Hierarchy.l2_stats h in
  Alcotest.(check int) "three L1 fetches" 3 s1.Memsim.Cache.fetches;
  Alcotest.(check int) "two L2 fetches" 2 s2.Memsim.Cache.fetches;
  let cpu = Memsim.Timing.Fast in
  let instructions = 1000 in
  (* One L2 hit pays the L2 latency; the two memory fetches pay the
     miss penalty.  The pre-fix formula charged all three L1 fetches
     the L2 latency on top. *)
  let expected =
    (1.0 *. 60.0 /. Memsim.Timing.cycle_ns cpu
    +. 2.0 *. Memsim.Timing.miss_penalty cpu ~block_bytes:64)
    /. float_of_int instructions
  in
  Alcotest.(check (float 1e-12)) "disjoint charging" expected
    (Memsim.Hierarchy.overhead h cpu ~instructions)

(* --- victim selection property --------------------------------------- *)

let all_policies_arr = Array.of_list Level.all_policies

let prop_victim_valid =
  QCheck.Test.make ~count:300
    ~name:"victim selection in range, invalid ways first, every policy"
    QCheck.(
      triple (int_range 0 (Array.length all_policies_arr - 1))
        (int_range 1 32)
        (list_of_size Gen.(int_range 1 300) (int_range 0 4095)))
    (fun (pidx, raw_ways, addrs) ->
      let policy = all_policies_arr.(pidx) in
      let ways =
        (* Tree-PLRU's implicit heap needs a power-of-two arity. *)
        match policy with
        | Level.Tree_plru ->
          let rec pow2 p = if p * 2 > raw_ways then p else pow2 (p * 2) in
          pow2 1
        | _ -> raw_ways
      in
      let nsets = 4 and block = 16 in
      let t =
        Level.create
          (Level.config ~policy ~size_bytes:(nsets * ways * block)
             ~block_bytes:block ~ways ())
      in
      List.for_all
        (fun a ->
          Level.access t (a * 4) Memsim.Trace.Read Memsim.Trace.Mutator;
          let ok = ref true in
          for set = 0 to nsets - 1 do
            let v = Level.victim_preview t ~set in
            if v < 0 || v >= ways then ok := false;
            (* When an invalid way exists the victim must be one. *)
            let any_invalid = ref false in
            for w = 0 to ways - 1 do
              if not (Level.line_valid t ~set ~way:w) then
                any_invalid := true
            done;
            if !any_invalid && Level.line_valid t ~set ~way:v then
              ok := false
          done;
          !ok)
        addrs)

let workload_cases =
  List.map
    (fun (w : Workloads.Workload.t) ->
      Alcotest.test_case
        (Printf.sprintf "fused = hooked oracle: %s" w.name)
        `Slow (test_workload w))
    Workloads.Workload.all

let () =
  Alcotest.run "hier"
    [ ("differential", workload_cases);
      ("level",
       [ Alcotest.test_case "1-way level = direct-mapped cache" `Quick
           test_level_matches_cache
       ]);
      ("sweep",
       [ Alcotest.test_case "parallel = serial" `Slow
           test_parallel_vs_serial;
         Alcotest.test_case "kill-and-resume = uninterrupted" `Slow
           test_kill_and_resume;
         Alcotest.test_case "snapshot round trip" `Quick
           test_snapshot_roundtrip
       ]);
      ("overhead",
       [ Alcotest.test_case "Hierarchy.overhead charges disjointly" `Quick
           test_hierarchy_overhead_disjoint
       ]);
      ("properties", [ QCheck_alcotest.to_alcotest prop_victim_valid ])
    ]
