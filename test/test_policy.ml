(* Replacement-policy transition pins and policy_check self-tests.

   The model checker (tools/policy_check) verifies the engine against
   its executable spec exhaustively, but it would not notice the spec
   and the engine drifting *together*.  These tests pin the QLRU
   transition tables to hardcoded values from the documented
   semantics, so a change to either side has to touch a literal here.
   The checker itself is then exercised both positively (small
   configurations verify clean) and negatively (every seeded spec
   mutation is caught), and the checkpoint scanner is run against
   files the real writers produced. *)

module L = Memsim.Level
module Spec = Policy_check.Spec
module Model = Policy_check.Model

let block_bytes = 16

let mk policy ~ways =
  L.create
    (L.config ~policy ~size_bytes:(block_bytes * ways) ~block_bytes ~ways ())

let read lvl b =
  L.access lvl (b * block_bytes) Memsim.Trace.Read Memsim.Trace.Mutator

let ages lvl = (Spec.decode lvl ~set:0).Spec.v

let check_ages msg expected lvl =
  Alcotest.(check (array int)) msg expected (ages lvl)

let tags lvl ~ways = Array.init ways (fun w -> L.line_tag lvl ~set:0 ~way:w)

(* The way a miss landed in: the unique way whose tag changed. *)
let landed before after =
  let w = ref (-1) in
  Array.iteri
    (fun i t ->
      if t <> before.(i) then begin
        Alcotest.(check int) "only one way replaced" (-1) !w;
        w := i
      end)
    after;
  !w

(* --- QLRU transition tables ------------------------------------------- *)

(* Shared prefix: four fills into an empty 4-way set.  Fills take the
   lowest invalid way, so way i holds block 10+i afterwards. *)
let fill_four lvl = List.iter (read lvl) [ 10; 11; 12; 13 ]

(* R1U2: a fill ages every other way by one (saturating at 3) and sets
   the filled way to 1, so the fill order stays visible in the ages. *)
let test_qlru_r1u2_table () =
  let lvl = mk L.Qlru_h11_m1_r1_u2 ~ways:4 in
  read lvl 10;
  check_ages "after fill way0" [| 1; 1; 1; 1 |] lvl;
  read lvl 11;
  check_ages "after fill way1" [| 2; 1; 2; 2 |] lvl;
  read lvl 12;
  check_ages "after fill way2" [| 3; 2; 1; 3 |] lvl;
  read lvl 13;
  check_ages "after fill way3" [| 3; 3; 2; 1 |] lvl;
  (* H11 hit: age := age lsr 1 on the hit way only. *)
  read lvl 10;
  check_ages "hit halves the age" [| 1; 3; 2; 1 |] lvl;
  read lvl 10;
  check_ages "second hit reaches 0" [| 0; 3; 2; 1 |] lvl

(* R0U0: a fill touches only the filled way, so a fresh set ends up
   uniformly age 1 and the first miss must normalize (deficit 2). *)
let test_qlru_r0u0_table () =
  let first = mk L.Qlru_h11_m1_r0_u0 ~ways:4 in
  read first 10;
  check_ages "after fill way0" [| 1; 0; 0; 0 |] first;
  let lvl = mk L.Qlru_h11_m1_r0_u0 ~ways:4 in
  fill_four lvl;
  check_ages "uniform after four fills" [| 1; 1; 1; 1 |] lvl;
  read lvl 12;
  check_ages "hit halves the age" [| 1; 1; 0; 1 |] lvl

(* The pinned divergence: after the same four fills, a miss evicts way
   1 under R1U2 (last age-3 of [3;3;2;1], no deficit) but way 0 under
   R0U0 ([1;1;1;1] normalizes to all 3s and R0 takes the first). *)
let test_qlru_variant_divergence () =
  let miss_way policy expected_ages_after =
    let lvl = mk policy ~ways:4 in
    fill_four lvl;
    let before = tags lvl ~ways:4 in
    read lvl 14;
    check_ages
      (Printf.sprintf "ages after miss (%s)" (L.policy_label policy))
      expected_ages_after lvl;
    landed before (tags lvl ~ways:4)
  in
  (* R1U2 fill into way 1: others age, way 1 restarts at 1. *)
  Alcotest.(check int) "r1u2 evicts way 1" 1
    (miss_way L.Qlru_h11_m1_r1_u2 [| 3; 1; 3; 2 |]);
  (* R0U0 fill into way 0 after normalization: only way 0 changes. *)
  Alcotest.(check int) "r0u0 evicts way 0" 0
    (miss_way L.Qlru_h11_m1_r0_u0 [| 1; 3; 3; 3 |])

(* --- model-checker self-tests ------------------------------------------ *)

(* Small configurations verify clean: the exhaustive pass over every
   reachable metadata state plus the bounded sequence differential. *)
let test_checker_positive () =
  List.iter
    (fun policy ->
      List.iter
        (fun ways ->
          let r = Model.check ~budget:600 policy ~ways in
          Alcotest.(check (list string))
            (Printf.sprintf "%s/%d clean" (L.policy_label policy) ways)
            []
            (List.map
               (fun f -> f.Check.Finding.message)
               r.Model.findings))
        [ 2; 4 ])
    L.all_policies

(* Every seeded spec mutation must be caught on the policy it bends;
   a blind checker here would also miss the symmetric engine bug. *)
let test_checker_catches_mutations () =
  List.iter
    (fun (mutate, policy) ->
      let r = Model.check ~mutate ~budget:600 policy ~ways:4 in
      Alcotest.(check bool)
        (Printf.sprintf "%s caught on %s"
           (Spec.mutation_label mutate)
           (L.policy_label policy))
        true
        (Check.Finding.has_errors r.Model.findings))
    [ (Spec.Plru_flip, L.Tree_plru);
      (Spec.Lru_stuck, L.Lru);
      (Spec.Mru_nowrap, L.Mru);
      (Spec.Qlru_hit_reset, L.Qlru_h11_m1_r1_u2);
      (Spec.Victim_way0, L.Lru)
    ]

(* --- checkpoint scanner over real writer output ------------------------- *)

let temp_ckpt body =
  let path = Filename.temp_file "test_policy" ".ckpt" in
  let oc = open_out_bin path in
  output_bytes oc body;
  close_out oc;
  path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      let b = Bytes.create n in
      really_input ic b 0 n;
      b)

let errors r =
  List.map
    (fun f -> f.Check.Finding.rule)
    (Check.Finding.errors r.Check.Ckpt_check.findings)

let test_ckpt_scan_grid () =
  let sweep =
    Memsim.Sweep.create
      [ Memsim.Cache.config ~size_bytes:1024 ~block_bytes:64 ();
        Memsim.Cache.config ~size_bytes:2048 ~block_bytes:64 ()
      ]
  in
  Array.iter
    (fun c ->
      for b = 0 to 40 do
        Memsim.Cache.access c (b * 64) Memsim.Trace.Read Memsim.Trace.Mutator
      done)
    (Memsim.Sweep.caches sweep);
  let path = Filename.temp_file "test_policy" ".ckpt" in
  Memsim.Sweep.save_checkpoint sweep ~events:41 ~cursor:41 path;
  let r = Check.Ckpt_check.scan ~events:41 path in
  Alcotest.(check (list string)) "clean grid checkpoint" [] (errors r);
  Alcotest.(check bool) "kind grid" true
    (r.Check.Ckpt_check.kind = Some Check.Ckpt_check.Grid);
  Alcotest.(check int) "both snapshots walked" 2
    r.Check.Ckpt_check.snapshots;
  (* Event-count cross-check against the recording being swept. *)
  let r = Check.Ckpt_check.scan ~events:99 path in
  Alcotest.(check (list string)) "event mismatch" [ "ckpt.events" ]
    (errors r);
  Sys.remove path

let test_ckpt_scan_hier () =
  let h =
    Memsim.Hier.create ~fused:false
      (Memsim.Hier.config
         ~levels:
           [ L.config ~policy:L.Tree_plru ~size_bytes:1024 ~block_bytes:64
               ~ways:4 ();
             L.config ~policy:L.Qlru_h11_m1_r1_u2 ~size_bytes:4096
               ~block_bytes:64 ~ways:8 ()
           ]
         ())
  in
  for b = 0 to 40 do
    Memsim.Hier.access h (b * 64) Memsim.Trace.Read Memsim.Trace.Mutator
  done;
  let path = Filename.temp_file "test_policy" ".ckpt" in
  Memsim.Sweep.save_hier_checkpoint [| h |] ~events:41 ~cursor:20 path;
  let r = Check.Ckpt_check.scan path in
  Alcotest.(check (list string)) "clean hierarchy checkpoint" [] (errors r);
  Alcotest.(check bool) "kind hierarchy" true
    (r.Check.Ckpt_check.kind = Some Check.Ckpt_check.Hier);
  let body = read_file path in
  Sys.remove path;

  (* Corrupt the level-0 way count (file magic 8 + header 24 + hier
     magic 8 + nlevels 8 + level magic 8 + size 8 + block 8 = 72). *)
  let bad = Bytes.copy body in
  Bytes.set_int64_le bad 72 37L;
  let p = temp_ckpt bad in
  let r = Check.Ckpt_check.scan p in
  Sys.remove p;
  Alcotest.(check bool) "corrupt ways caught" true
    (List.mem "ckpt.geometry" (errors r));

  (* Truncation inside the first snapshot body. *)
  let p = temp_ckpt (Bytes.sub body 0 100) in
  let r = Check.Ckpt_check.scan p in
  Sys.remove p;
  Alcotest.(check bool) "truncation caught" true
    (List.mem "ckpt.truncated" (errors r));

  (* Cursor beyond the event count. *)
  let bad = Bytes.copy body in
  Bytes.set_int64_le bad 8 1000L;
  let p = temp_ckpt bad in
  let r = Check.Ckpt_check.scan p in
  Sys.remove p;
  Alcotest.(check bool) "bad cursor caught" true
    (List.mem "ckpt.header" (errors r));

  (* Foreign magic. *)
  let bad = Bytes.copy body in
  Bytes.blit_string "NOTACKPT" 0 bad 0 8;
  let p = temp_ckpt bad in
  let r = Check.Ckpt_check.scan p in
  Sys.remove p;
  Alcotest.(check bool) "foreign magic caught" true
    (List.mem "ckpt.magic" (errors r))

let () =
  Alcotest.run "policy"
    [ ( "qlru-tables",
        [ Alcotest.test_case "r1u2 transitions" `Quick test_qlru_r1u2_table;
          Alcotest.test_case "r0u0 transitions" `Quick test_qlru_r0u0_table;
          Alcotest.test_case "variant divergence" `Quick
            test_qlru_variant_divergence
        ] );
      ( "model-checker",
        [ Alcotest.test_case "small configs verify clean" `Quick
            test_checker_positive;
          Alcotest.test_case "seeded mutations caught" `Quick
            test_checker_catches_mutations
        ] );
      ( "checkpoints",
        [ Alcotest.test_case "grid scan" `Quick test_ckpt_scan_grid;
          Alcotest.test_case "hierarchy scan" `Quick test_ckpt_scan_hier
        ] )
    ]
