(* The static checkers behind `repro check':

   - positives: every workload's recorded trace, in both on-disk
     formats, scans clean and round-trips through the scanner's
     decoder; a Cheney run passes the semispace discipline;
   - hostile negatives: each corruption (truncation, bad varint,
     out-of-range address, corrupt kind bits, trailing bytes, bad
     magic, count mismatch) yields its own located diagnostic;
   - synthetic stream violations: non-monotonic allocation, from-space
     references, count cross-check failures;
   - telemetry documents: span discipline over the event timeline;
   - properties: arbitrary event streams survive save/scan in both
     formats, and `Runner.record' output always passes the checker. *)

let tmp_file =
  let n = ref 0 in
  fun suffix ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "test_check_%d_%d%s" (Unix.getpid ()) !n suffix)

let with_tmp suffix f =
  let path = tmp_file suffix in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let read_bytes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let b = Bytes.create n in
      really_input ic b 0 n;
      b)

let write_bytes path b =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc b)

let rules findings =
  List.map (fun f -> f.Check.Finding.rule) findings

let has_rule rule findings =
  List.exists (fun f -> String.equal f.Check.Finding.rule rule) findings

let check_has rule findings =
  Alcotest.(check bool)
    (Printf.sprintf "finding %s in [%s]" rule (String.concat "; " (rules findings)))
    true (has_rule rule findings)

let check_clean what findings =
  Alcotest.(check (list string))
    (what ^ " has no error findings") []
    (rules (Check.Finding.errors findings))

let recording_of_events events =
  let r = Memsim.Recording.create () in
  let out = Memsim.Recording.sink r in
  List.iter
    (fun (addr, kind, phase) -> out.Memsim.Trace.access addr kind phase)
    events;
  r

let save_recording ~format r =
  let path = tmp_file ".trace" in
  Memsim.Recording.save ~format r path;
  path

(* Geometry `repro record' defaults imply (No_gc, 48 MB dynamic). *)
let record_geometry ?gc () =
  let gc = Option.value gc ~default:Vscheme.Machine.No_gc in
  let cfg =
    { Vscheme.Machine.default_config with
      gc;
      heap_bytes = 48 * 1024 * 1024
    }
  in
  { Check.Stream_check.static_base = 0;
    stack_base = Vscheme.Machine.stack_base_bytes cfg;
    dynamic_base = Vscheme.Machine.dynamic_base_bytes cfg;
    dynamic_limit = Vscheme.Machine.dynamic_limit_bytes cfg;
    semispace_bytes =
      (match gc with
       | Vscheme.Machine.Cheney { semispace_bytes } -> Some semispace_bytes
       | _ -> None)
  }

(* --- Positives: every workload, both formats ----------------------------- *)

let test_workloads_scan_clean () =
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let _, recording = Core.Runner.record ~scale:1 w in
      List.iter
        (fun format ->
          with_tmp ".trace" (fun path ->
              Memsim.Recording.save ~format recording path;
              let scan = Check.Trace_file.scan path in
              check_clean (w.Workloads.Workload.name ^ " scan") scan.Check.Trace_file.findings;
              match scan.Check.Trace_file.recording with
              | None -> Alcotest.fail "scanner dropped the recording"
              | Some decoded ->
                Alcotest.(check bool)
                  (w.Workloads.Workload.name ^ " decode round-trip") true
                  (Memsim.Recording.equal recording decoded);
                let _, findings =
                  Check.Stream_check.check ~geometry:(record_geometry ())
                    ~file:path decoded
                in
                check_clean (w.Workloads.Workload.name ^ " stream") findings))
        [ Memsim.Recording.V1; Memsim.Recording.V2; Memsim.Recording.V3 ])
    Workloads.Workload.all

let test_cheney_scan_clean () =
  let gc = Vscheme.Machine.Cheney { semispace_bytes = 1024 * 1024 } in
  let w = Workloads.Workload.lred in
  let _, recording = Core.Runner.record ~gc ~scale:4 w in
  with_tmp ".trace" (fun path ->
      Memsim.Recording.save ~format:Memsim.Recording.V2 recording path;
      let scan = Check.Trace_file.scan path in
      check_clean "cheney scan" scan.Check.Trace_file.findings;
      let summary, findings =
        Check.Stream_check.check ~geometry:(record_geometry ~gc ())
          ~file:path recording
      in
      check_clean "cheney stream" findings;
      Alcotest.(check bool) "mutator events present" true
        (summary.Check.Stream_check.mutator_events > 0))

(* --- Hostile negatives --------------------------------------------------- *)

let sample_recording () =
  recording_of_events
    [ (0, Memsim.Trace.Read, Memsim.Trace.Mutator);
      (64, Memsim.Trace.Write, Memsim.Trace.Mutator);
      (128, Memsim.Trace.Alloc_write, Memsim.Trace.Mutator);
      (64, Memsim.Trace.Read, Memsim.Trace.Collector);
      (4096, Memsim.Trace.Read, Memsim.Trace.Mutator)
    ]

let test_truncated_v2 () =
  let path = save_recording ~format:Memsim.Recording.V2 (sample_recording ()) in
  let b = read_bytes path in
  with_tmp ".trace" (fun cut ->
      write_bytes cut (Bytes.sub b 0 (Bytes.length b - 2));
      let scan = Check.Trace_file.scan cut in
      check_has "trace.truncated" scan.Check.Trace_file.findings);
  Sys.remove path

let test_truncated_header () =
  with_tmp ".trace" (fun path ->
      write_bytes path (Bytes.make 7 'x');
      let scan = Check.Trace_file.scan path in
      check_has "trace.truncated" scan.Check.Trace_file.findings)

let test_bad_magic () =
  with_tmp ".trace" (fun path ->
      write_bytes path (Bytes.make 32 '\xab');
      let scan = Check.Trace_file.scan path in
      check_has "trace.magic" scan.Check.Trace_file.findings)

(* A v2 file whose single event's varint never lands within 63 bits. *)
let test_bad_varint () =
  with_tmp ".trace" (fun path ->
      let b = Buffer.create 64 in
      Buffer.add_string b "ECACRTV2";
      Buffer.add_char b '\002';
      let count = Bytes.create 8 in
      Bytes.set_int64_le count 0 1L;
      Buffer.add_bytes b count;
      Buffer.add_char b '\x80';
      for _ = 1 to 12 do
        Buffer.add_char b '\xff'
      done;
      write_bytes path (Bytes.of_string (Buffer.contents b));
      let scan = Check.Trace_file.scan path in
      check_has "trace.varint" scan.Check.Trace_file.findings)

(* A v2 event whose negative delta drives the address below zero. *)
let test_address_range_v2 () =
  with_tmp ".trace" (fun path ->
      let b = Buffer.create 64 in
      Buffer.add_string b "ECACRTV2";
      Buffer.add_char b '\002';
      let count = Bytes.create 8 in
      Bytes.set_int64_le count 0 1L;
      Buffer.add_bytes b count;
      (* zigzag(-8) = 15: fits the first byte's 4 payload bits. *)
      Buffer.add_char b (Char.chr (15 lsl 3));
      write_bytes path (Bytes.of_string (Buffer.contents b));
      let scan = Check.Trace_file.scan path in
      check_has "trace.address-range" scan.Check.Trace_file.findings)

let test_corrupt_kind_v1 () =
  let path = save_recording ~format:Memsim.Recording.V1 (sample_recording ()) in
  let b = read_bytes path in
  (* Set both kind bits of the first event: code 3 is unassigned. *)
  Bytes.set b 16 (Char.chr (Char.code (Bytes.get b 16) lor 6));
  with_tmp ".trace" (fun bad ->
      write_bytes bad b;
      let scan = Check.Trace_file.scan bad in
      check_has "trace.kind-bits" scan.Check.Trace_file.findings);
  Sys.remove path

let test_trailing_bytes_v2 () =
  let path = save_recording ~format:Memsim.Recording.V2 (sample_recording ()) in
  let b = read_bytes path in
  with_tmp ".trace" (fun bad ->
      write_bytes bad (Bytes.cat b (Bytes.make 3 '\000'));
      let scan = Check.Trace_file.scan bad in
      check_has "trace.trailing-bytes" scan.Check.Trace_file.findings);
  Sys.remove path

(* --- v3 negatives: every header field and both word-level rules ---------- *)

(* Patch one byte of a freshly saved v3 file and expect one rule. *)
let patch_v3 rule patch =
  let path = save_recording ~format:Memsim.Recording.V3 (sample_recording ()) in
  let b = read_bytes path in
  Sys.remove path;
  with_tmp ".trace" (fun bad ->
      write_bytes bad (patch b);
      let scan = Check.Trace_file.scan bad in
      check_has rule scan.Check.Trace_file.findings)

let test_bad_version_v3 () =
  patch_v3 "trace.version" (fun b -> Bytes.set b 8 '\004'; b)

let test_bad_stride_v3 () =
  patch_v3 "trace.stride" (fun b -> Bytes.set b 9 '\016'; b)

let test_truncated_v3 () =
  (* Cutting three bytes leaves a partial trailing word. *)
  patch_v3 "trace.truncated" (fun b -> Bytes.sub b 0 (Bytes.length b - 3))

let test_trailing_bytes_v3 () =
  (* One whole word past the declared count. *)
  patch_v3 "trace.trailing-bytes" (fun b -> Bytes.cat b (Bytes.make 8 '\000'))

let test_declared_count_v3 () =
  patch_v3 "trace.declared-count" (fun b -> Bytes.set_int64_le b 16 7L; b)

let test_corrupt_kind_v3 () =
  (* Both kind bits of the first event: code 3 is unassigned. *)
  patch_v3 "trace.kind-bits" (fun b ->
      Bytes.set b 24 (Char.chr (Char.code (Bytes.get b 24) lor 6));
      b)

let test_word_width_v3 () =
  (* Bit 63 of the first event cannot fit a 63-bit native int — the
     one check the mmap load path cannot perform itself. *)
  patch_v3 "trace.word-width" (fun b ->
      Bytes.set b 31 (Char.chr (Char.code (Bytes.get b 31) lor 0x80));
      b)

let test_declared_count_v1 () =
  let path = save_recording ~format:Memsim.Recording.V1 (sample_recording ()) in
  let b = read_bytes path in
  Bytes.set_int64_le b 8 7L;
  with_tmp ".trace" (fun bad ->
      write_bytes bad b;
      let scan = Check.Trace_file.scan bad in
      check_has "trace.declared-count" scan.Check.Trace_file.findings);
  Sys.remove path

(* --- Synthetic stream violations ----------------------------------------- *)

let synthetic_geometry ?semispace_bytes () =
  { Check.Stream_check.static_base = 0;
    stack_base = 0x1000;
    dynamic_base = 0x2000;
    dynamic_limit = 0x2000 + (2 * 0x1000);
    semispace_bytes
  }

let test_alloc_monotonic_violation () =
  (* Frontier reaches 0x2800; a later alloc-write lands at 0x2400,
     which this run never initialized. *)
  let r =
    recording_of_events
      [ (0x2000, Memsim.Trace.Alloc_write, Memsim.Trace.Mutator);
        (0x2800, Memsim.Trace.Alloc_write, Memsim.Trace.Mutator);
        (0x2400, Memsim.Trace.Alloc_write, Memsim.Trace.Mutator)
      ]
  in
  let _, findings =
    Check.Stream_check.check ~geometry:(synthetic_geometry ()) ~file:"synthetic"
      r
  in
  check_has "stream.alloc-monotonic" findings

let test_alloc_reinit_allowed () =
  (* Re-initializing a word the run already alloc-wrote is the VM's
     closure-capture pattern and must pass. *)
  let r =
    recording_of_events
      [ (0x2000, Memsim.Trace.Alloc_write, Memsim.Trace.Mutator);
        (0x2004, Memsim.Trace.Alloc_write, Memsim.Trace.Mutator);
        (0x2008, Memsim.Trace.Alloc_write, Memsim.Trace.Mutator);
        (0x2004, Memsim.Trace.Alloc_write, Memsim.Trace.Mutator)
      ]
  in
  let _, findings =
    Check.Stream_check.check ~geometry:(synthetic_geometry ()) ~file:"synthetic"
      r
  in
  check_clean "re-initialization" findings

let test_semispace_violation () =
  (* One collection flips to space 1 (0x3000+); a mutator read back in
     space 0 afterwards breaks the Cheney discipline. *)
  let r =
    recording_of_events
      [ (0x2000, Memsim.Trace.Alloc_write, Memsim.Trace.Mutator);
        (0x2000, Memsim.Trace.Read, Memsim.Trace.Collector);
        (0x3000, Memsim.Trace.Read, Memsim.Trace.Mutator);
        (0x2000, Memsim.Trace.Read, Memsim.Trace.Mutator)
      ]
  in
  let _, findings =
    Check.Stream_check.check
      ~geometry:(synthetic_geometry ~semispace_bytes:0x1000 ()) ~file:"synthetic"
      r
  in
  check_has "stream.semispace" findings

let test_address_beyond_limit () =
  let r =
    recording_of_events [ (0x8000, Memsim.Trace.Read, Memsim.Trace.Mutator) ]
  in
  let _, findings =
    Check.Stream_check.check ~geometry:(synthetic_geometry ()) ~file:"synthetic"
      r
  in
  check_has "stream.address-range" findings

let test_count_mismatch () =
  let r =
    recording_of_events
      [ (0x100, Memsim.Trace.Read, Memsim.Trace.Mutator);
        (0x104, Memsim.Trace.Read, Memsim.Trace.Collector)
      ]
  in
  let expect =
    { Check.Stream_check.mutator_refs = Some 5;
      collector_refs = Some 1;
      collections = None
    }
  in
  let _, findings = Check.Stream_check.check ~expect ~file:"synthetic" r in
  check_has "stream.count-mutator" findings;
  Alcotest.(check bool) "collector count matches" false
    (has_rule "stream.count-collector" findings)

(* --- Telemetry documents ------------------------------------------------- *)

let doc_of_events events =
  Obs.Json.Obj
    [ ("meta", Obs.Json.Obj [ ("label", Obs.Json.Str "test") ]);
      ("metrics", Obs.Json.Obj []);
      ("events", Obs.Json.List (List.map Obs.Events.event_to_json events))
    ]

let event ?(ts = 0) ?(cat = "phase") kind name =
  { Obs.Events.ts; name; cat; kind; args = [] }

let write_doc path doc =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Obs.Json.to_pretty_string doc))

let test_doc_balanced () =
  with_tmp ".json" (fun path ->
      write_doc path
        (doc_of_events
           [ event ~ts:1 Obs.Events.Begin "phase.load";
             event ~ts:2 Obs.Events.End "phase.load";
             event ~ts:3 Obs.Events.Begin "phase.run";
             event ~ts:4 ~cat:"gc" Obs.Events.Begin "gc.collection";
             event ~ts:5 ~cat:"gc" Obs.Events.End "gc.collection";
             event ~ts:6 Obs.Events.End "phase.run"
           ]);
      let _, findings = Check.Doc_check.check_file ~file:path in
      check_clean "balanced document" findings)

let test_doc_unbalanced () =
  with_tmp ".json" (fun path ->
      write_doc path
        (doc_of_events
           [ event ~ts:1 Obs.Events.Begin "phase.load";
             event ~ts:2 Obs.Events.Begin "phase.run";
             event ~ts:3 Obs.Events.End "phase.load"
           ]);
      let _, findings = Check.Doc_check.check_file ~file:path in
      check_has "doc.phase-nesting" findings)

let test_doc_expectations () =
  with_tmp ".json" (fun path ->
      let counter v =
        Obs.Json.Obj
          [ ("type", Obs.Json.Str "counter"); ("value", Obs.Json.Int v) ]
      in
      write_doc path
        (Obs.Json.Obj
           [ ("meta", Obs.Json.Obj []);
             ("metrics",
              Obs.Json.Obj
                [ ("run.mutator_refs", counter 123);
                  ("run.collector_refs", counter 45);
                  ("run.collections", counter 6)
                ]);
             ("events", Obs.Json.List [])
           ]);
      let e, findings = Check.Doc_check.check_file ~file:path in
      check_clean "expectations document" findings;
      Alcotest.(check (option int)) "mutator" (Some 123)
        e.Check.Doc_check.mutator_refs;
      Alcotest.(check (option int)) "collector" (Some 45)
        e.Check.Doc_check.collector_refs;
      Alcotest.(check (option int)) "collections" (Some 6)
        e.Check.Doc_check.collections)

(* --- Properties ----------------------------------------------------------- *)

let arbitrary_events =
  let open QCheck in
  let event =
    map
      (fun (addr_words, kind_sel, collector) ->
        let kind =
          match kind_sel mod 3 with
          | 0 -> Memsim.Trace.Read
          | 1 -> Memsim.Trace.Write
          | _ -> Memsim.Trace.Alloc_write
        in
        let phase =
          if collector then Memsim.Trace.Collector else Memsim.Trace.Mutator
        in
        (addr_words * 4, kind, phase))
      (triple (int_bound 0xffffff) (int_bound 2) bool)
  in
  list_of_size Gen.(0 -- 300) event

let prop_save_scan_roundtrip =
  QCheck.Test.make ~name:"save/scan round-trips both formats" ~count:60
    arbitrary_events (fun events ->
      let r = recording_of_events events in
      List.for_all
        (fun format ->
          let path = save_recording ~format r in
          let scan = Check.Trace_file.scan path in
          Sys.remove path;
          Check.Finding.errors scan.Check.Trace_file.findings = []
          &&
          match scan.Check.Trace_file.recording with
          | Some decoded -> Memsim.Recording.equal r decoded
          | None -> false)
        [ Memsim.Recording.V1; Memsim.Recording.V2; Memsim.Recording.V3 ])

(* The packed stream survives a change of container: v2's
   delta+varint encoding and v3's fixed-stride mmap layout agree on
   every arbitrary event stream, in both directions. *)
let prop_v2_v3_roundtrip =
  QCheck.Test.make ~name:"v2 <-> v3 round trip" ~count:60 arbitrary_events
    (fun events ->
      let r = recording_of_events events in
      let load_via format r =
        let path = save_recording ~format r in
        let loaded = Memsim.Recording.load path in
        Sys.remove path;
        loaded
      in
      let as_v3 = load_via Memsim.Recording.V3 r in
      let back = load_via Memsim.Recording.V2 as_v3 in
      let again = load_via Memsim.Recording.V3 back in
      Memsim.Recording.equal r as_v3
      && Memsim.Recording.equal r back
      && Memsim.Recording.equal r again)

let prop_record_passes_checker =
  QCheck.Test.make ~name:"Runner.record output passes the checker" ~count:4
    QCheck.(int_bound (List.length Workloads.Workload.all - 1))
    (fun i ->
      let w = List.nth Workloads.Workload.all i in
      let _, recording = Core.Runner.record ~scale:1 w in
      let path = save_recording ~format:Memsim.Recording.V2 recording in
      let scan = Check.Trace_file.scan path in
      Sys.remove path;
      Check.Finding.errors scan.Check.Trace_file.findings = []
      &&
      match scan.Check.Trace_file.recording with
      | None -> false
      | Some decoded ->
        let _, findings =
          Check.Stream_check.check ~geometry:(record_geometry ()) ~file:path
            decoded
        in
        Check.Finding.errors findings = [])

let () =
  Alcotest.run "check"
    [ ("workloads",
       [ Alcotest.test_case "all workloads, both formats" `Slow
           test_workloads_scan_clean;
         Alcotest.test_case "cheney run passes semispace discipline" `Slow
           test_cheney_scan_clean
       ]);
      ("hostile",
       [ Alcotest.test_case "truncated v2" `Quick test_truncated_v2;
         Alcotest.test_case "truncated header" `Quick test_truncated_header;
         Alcotest.test_case "bad magic" `Quick test_bad_magic;
         Alcotest.test_case "bad varint" `Quick test_bad_varint;
         Alcotest.test_case "address range v2" `Quick test_address_range_v2;
         Alcotest.test_case "corrupt kind bits v1" `Quick test_corrupt_kind_v1;
         Alcotest.test_case "trailing bytes v2" `Quick test_trailing_bytes_v2;
         Alcotest.test_case "declared count v1" `Quick test_declared_count_v1;
         Alcotest.test_case "bad version v3" `Quick test_bad_version_v3;
         Alcotest.test_case "bad stride v3" `Quick test_bad_stride_v3;
         Alcotest.test_case "truncated v3" `Quick test_truncated_v3;
         Alcotest.test_case "trailing bytes v3" `Quick test_trailing_bytes_v3;
         Alcotest.test_case "declared count v3" `Quick test_declared_count_v3;
         Alcotest.test_case "corrupt kind bits v3" `Quick test_corrupt_kind_v3;
         Alcotest.test_case "word width v3" `Quick test_word_width_v3
       ]);
      ("stream",
       [ Alcotest.test_case "alloc monotonicity violation" `Quick
           test_alloc_monotonic_violation;
         Alcotest.test_case "re-initialization allowed" `Quick
           test_alloc_reinit_allowed;
         Alcotest.test_case "semispace violation" `Quick
           test_semispace_violation;
         Alcotest.test_case "address beyond limit" `Quick
           test_address_beyond_limit;
         Alcotest.test_case "count mismatch" `Quick test_count_mismatch
       ]);
      ("doc",
       [ Alcotest.test_case "balanced spans" `Quick test_doc_balanced;
         Alcotest.test_case "unbalanced spans" `Quick test_doc_unbalanced;
         Alcotest.test_case "expectations extracted" `Quick
           test_doc_expectations
       ]);
      ("properties",
       [ QCheck_alcotest.to_alcotest prop_save_scan_roundtrip;
         QCheck_alcotest.to_alcotest prop_v2_v3_roundtrip;
         QCheck_alcotest.to_alcotest prop_record_passes_checker
       ])
    ]
